//! The load-bearing invariant of the whole code: the Villasenor–Buneman
//! current deposition plus `move_p` segmentation satisfies the *discrete*
//! continuity equation exactly (to f32 roundoff):
//!
//! ```text
//! (ρ(n+1) − ρ(n))/dt + ∇·J(n+½) = 0      at every node
//! ```
//!
//! with ρ deposited by trilinear node weighting. If this holds for
//! arbitrary moves — including multi-face crossings, periodic wraps and
//! reflections — then Gauss's law is preserved by the field update and the
//! simulation never needs (but still offers) divergence cleaning.

use proptest::prelude::*;
use vpic_core::accumulator::AccumulatorArray;
use vpic_core::deposit::deposit_rho;
use vpic_core::field::FieldArray;
use vpic_core::field_solver::{bcs_of, sync_j, sync_rho};
use vpic_core::grid::{Grid, ParticleBc};
use vpic_core::interpolator::InterpolatorArray;
use vpic_core::particle::Particle;
use vpic_core::push::{advance_p_serial, PushCoefficients};

/// Max |dρ/dt + ∇·J| over live nodes, normalized by the max |dρ/dt| term
/// (so the bound is a relative roundoff measure).
fn continuity_residual(
    g: &Grid,
    parts_before: &[Particle],
    parts_after: &[Particle],
    f: &FieldArray,
    qsp: f32,
) -> f64 {
    let mut before = FieldArray::new(g);
    deposit_rho(&mut before, g, parts_before.iter().copied(), qsp);
    sync_rho(&mut before, g, bcs_of(g));
    let mut after = FieldArray::new(g);
    deposit_rho(&mut after, g, parts_after.iter().copied(), qsp);
    sync_rho(&mut after, g, bcs_of(g));

    let (sx, sy, _) = g.strides();
    let (dj, dk) = (sx, sx * sy);
    let (rdx, rdy, rdz) = (1.0 / g.dx as f64, 1.0 / g.dy as f64, 1.0 / g.dz as f64);
    let rdt = 1.0 / g.dt as f64;
    let mut max_resid = 0.0f64;
    let mut max_term = 1e-30f64;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                let drho = (after.rho[v] as f64 - before.rho[v] as f64) * rdt;
                let divj = rdx * (f.jx[v] as f64 - f.jx[v - 1] as f64)
                    + rdy * (f.jy[v] as f64 - f.jy[v - dj] as f64)
                    + rdz * (f.jz[v] as f64 - f.jz[v - dk] as f64);
                max_resid = max_resid.max((drho + divj).abs());
                max_term = max_term.max(drho.abs()).max(divj.abs());
            }
        }
    }
    max_resid / max_term
}

fn run_continuity(g: Grid, particles: Vec<Particle>, qsp: f32) -> f64 {
    let interp = InterpolatorArray::new(&g); // zero fields: free streaming
    let mut acc = AccumulatorArray::new(&g);
    let coeffs = PushCoefficients::new(qsp, 1.0, &g);
    let before = particles.clone();
    let mut parts = particles;
    let exiles = advance_p_serial(&mut parts, coeffs, &interp, &mut acc, &g);
    assert!(exiles.is_empty(), "no migrate faces in these grids");
    let mut f = FieldArray::new(&g);
    acc.unload(&mut f, &g);
    sync_j(&mut f, &g, bcs_of(&g));
    continuity_residual(&g, &before, &parts, &f, qsp)
}

fn arb_particle(g: &Grid) -> impl Strategy<Value = Particle> {
    let (nx, ny, nz) = (g.nx, g.ny, g.nz);
    let sx = g.strides().0;
    let sxy = sx * g.strides().1;
    (
        1..=nx,
        1..=ny,
        1..=nz,
        -0.999f32..0.999,
        -0.999f32..0.999,
        -0.999f32..0.999,
        -3.0f32..3.0,
        -3.0f32..3.0,
        -3.0f32..3.0,
        0.1f32..4.0,
    )
        .prop_map(move |(i, j, k, dx, dy, dz, ux, uy, uz, w)| Particle {
            dx,
            dy,
            dz,
            i: (i + sx * j + sxy * k) as u32,
            ux,
            uy,
            uz,
            w,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Periodic box, free streaming at relativistic speeds: |u| up to 3
    /// means particles cross cells (and the domain edge) routinely.
    #[test]
    fn continuity_periodic(parts in proptest::collection::vec(
        arb_particle(&Grid::periodic((6, 5, 4), (0.5, 0.6, 0.7), 0.4)), 1..40,
    )) {
        let g = Grid::periodic((6, 5, 4), (0.5, 0.6, 0.7), 0.4);
        let resid = run_continuity(g, parts, -1.0);
        prop_assert!(resid < 2e-4, "relative continuity residual {resid}");
    }

    /// Reflecting walls along x: reflected moves must also conserve charge
    /// (no current leaks through the wall).
    #[test]
    fn continuity_reflecting(parts in proptest::collection::vec(
        arb_particle(&Grid::periodic((6, 5, 4), (0.5, 0.6, 0.7), 0.4)), 1..40,
    )) {
        let bc = [
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ];
        let g = Grid::new((6, 5, 4), (0.5, 0.6, 0.7), 0.4, bc);
        let resid = run_continuity(g, parts, 1.0);
        prop_assert!(resid < 2e-4, "relative continuity residual {resid}");
    }

    /// Positive charge species behaves identically.
    #[test]
    fn continuity_positive_charge(parts in proptest::collection::vec(
        arb_particle(&Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.5)), 1..20,
    )) {
        let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 0.5);
        let resid = run_continuity(g, parts, 2.0);
        prop_assert!(resid < 2e-4, "relative continuity residual {resid}");
    }
}

/// Deterministic worst-case: a particle aimed diagonally through a voxel
/// corner (three crossings in one step).
#[test]
fn continuity_corner_crossing() {
    let g = Grid::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.3);
    let u = 2.0f32; // v ≈ 0.76c per axis component... |u|=3.46, v≈0.96c
    let parts = vec![Particle {
        dx: 0.98,
        dy: 0.97,
        dz: 0.99,
        i: g.voxel(2, 2, 2) as u32,
        ux: u,
        uy: u,
        uz: u,
        w: 1.5,
    }];
    let resid = run_continuity(g, parts, -1.0);
    assert!(resid < 2e-4, "corner crossing residual {resid}");
}

/// A particle that exactly lands on a face (displacement hits ±1 to f32
/// precision) must not double-deposit or lose charge.
#[test]
fn continuity_exact_face_landing() {
    let g = Grid::periodic((4, 4, 4), (1.0, 1.0, 1.0), 1.0);
    // cdt_dx = 1, u chosen so half-displacement ≈ 0.25 → lands at 1.0.
    let u = {
        // Solve u/γ · cdt_dx = 0.25 → v = 0.25, u = v/√(1−v²).
        let v = 0.25f64;
        (v / (1.0 - v * v).sqrt()) as f32
    };
    let parts = vec![Particle {
        dx: 0.5,
        dy: 0.0,
        dz: 0.0,
        i: g.voxel(2, 2, 2) as u32,
        ux: u,
        uy: 0.0,
        uz: 0.0,
        w: 1.0,
    }];
    let resid = run_continuity(g, parts, -1.0);
    assert!(resid < 2e-4, "face landing residual {resid}");
}
