//! Determinism contract of the parallelized step loop.
//!
//! Every Rayon-parallel phase (interpolator load, field advances,
//! accumulator reduce/unload, sort) partitions its writes so the arithmetic
//! per output element is identical to the serial reference — the worker
//! count must never change a single bit. The reduction order across
//! pipelines is fixed by pipeline index, so for a *fixed* pipeline count
//! two identically-seeded runs are bitwise identical however the work is
//! scheduled. These tests pin both properties.

use vpic_core::field_solver::{
    advance_b, advance_b_serial, advance_e, advance_e_serial, bcs_of, sync_b, sync_e,
};
use vpic_core::{
    load_uniform, FieldArray, Grid, InterpolatorArray, Layout, Momentum, PushKernel, Rng,
    Simulation, Species,
};

/// Small thermal plasma with a seeded longitudinal E perturbation, so
/// currents, fields and cell crossings are all exercised.
fn plasma(pipelines: usize) -> Simulation {
    let dx = 0.2f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.8);
    let g = Grid::periodic((10, 9, 8), (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, pipelines);
    let mut e = Species::new("e", -1.0, 1.0).with_sort_interval(4);
    let mut rng = Rng::seeded(123);
    load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 8, Momentum::thermal(0.08));
    sim.add_species(e);
    let g = sim.grid.clone();
    let kx = 2.0 * std::f32::consts::PI / g.extent().0;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let x = g.x0 + (i as f32 - 0.5) * g.dx;
                sim.fields.ex[g.voxel(i, j, k)] = 0.02 * (kx * x).sin();
            }
        }
    }
    sync_e(&mut sim.fields, &g, bcs_of(&g));
    sim
}

fn assert_fields_bitwise_eq(a: &FieldArray, b: &FieldArray) {
    let pairs: [(&str, &Vec<f32>, &Vec<f32>); 9] = [
        ("ex", &a.ex, &b.ex),
        ("ey", &a.ey, &b.ey),
        ("ez", &a.ez, &b.ez),
        ("cbx", &a.cbx, &b.cbx),
        ("cby", &a.cby, &b.cby),
        ("cbz", &a.cbz, &b.cbz),
        ("jx", &a.jx, &b.jx),
        ("jy", &a.jy, &b.jy),
        ("jz", &a.jz, &b.jz),
    ];
    for (name, x, y) in pairs {
        for (v, (p, q)) in x.iter().zip(y.iter()).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{name}[{v}] differs: {p} vs {q}");
        }
    }
}

#[test]
fn identically_seeded_runs_are_bitwise_identical() {
    let mut a = plasma(4);
    let mut b = plasma(4);
    for _ in 0..10 {
        a.step();
        b.step();
    }
    assert_eq!(a.n_particles(), b.n_particles());
    for (sa, sb) in a.species.iter().zip(b.species.iter()) {
        for (p, q) in sa.iter().zip(sb.iter()) {
            assert_eq!(p, q);
        }
    }
    assert_fields_bitwise_eq(&a.fields, &b.fields);
}

/// AoS vs AoSoA is the *same run*, bit for bit, at every worker count:
/// both layouts execute identical scalar arithmetic per particle, the
/// pipeline partition is over particle indices (never rounded to lane
/// blocks), and the AoSoA counting sort reuses the AoS histogram/prefix
/// formula — so layout is purely a memory transform. Ten steps with
/// `sort_interval = 4` exercise push, voxel sort and current deposit;
/// `refresh_rho` pins the charge-deposit path on top.
#[test]
fn aos_and_aosoa_runs_are_bitwise_identical_at_every_worker_count() {
    for pipes in [1usize, 2, 4, 8] {
        let mut a = plasma(pipes); // AoS: the default layout
        let mut b = plasma(pipes);
        b.set_layout(Layout::Aosoa);
        assert_eq!(b.layout(), Layout::Aosoa);
        for _ in 0..10 {
            a.step();
            b.step();
        }
        assert_eq!(a.n_particles(), b.n_particles(), "pipes {pipes}");
        for (sa, sb) in a.species.iter().zip(b.species.iter()) {
            for (k, (p, q)) in sa.iter().zip(sb.iter()).enumerate() {
                assert_eq!(p, q, "particle {k} differs with {pipes} workers");
            }
        }
        assert_fields_bitwise_eq(&a.fields, &b.fields);
        a.refresh_rho();
        b.refresh_rho();
        for (v, (p, q)) in a.fields.rho.iter().zip(b.fields.rho.iter()).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "rho[{v}] with {pipes} workers");
        }
    }
}

/// The lane-kernel matrix: AoS-scalar (the oracle), AoSoA-scalar and
/// AoSoA-lane must be the *same run* bit for bit at 1/2/4/8 pipelines.
/// Ten steps with `sort_interval = 4` mean the lane kernel sees freshly
/// sorted single-voxel blocks, drifted mixed-voxel blocks, cell-crossing
/// spill-outs and the straddling-block scalar path — every regime the
/// production hot path has.
#[test]
fn lane_kernel_matrix_is_bitwise_identical_across_layouts_and_pipelines() {
    for pipes in [1usize, 2, 4, 8] {
        let mut oracle = plasma(pipes); // AoS ignores the kernel knob
        let mut scalar = plasma(pipes);
        scalar.set_layout(Layout::Aosoa);
        scalar.set_kernel(PushKernel::Scalar);
        let mut lane = plasma(pipes);
        lane.set_layout(Layout::Aosoa);
        lane.set_kernel(PushKernel::Lane);
        assert_eq!(lane.kernel(), PushKernel::Lane);
        for _ in 0..10 {
            oracle.step();
            scalar.step();
            lane.step();
        }
        for (sim, which) in [(&scalar, "aosoa-scalar"), (&lane, "aosoa-lane")] {
            assert_eq!(
                sim.n_particles(),
                oracle.n_particles(),
                "{which} @{pipes} pipes"
            );
            for (sa, sb) in oracle.species.iter().zip(sim.species.iter()) {
                for (k, (p, q)) in sa.iter().zip(sb.iter()).enumerate() {
                    assert_eq!(p, q, "{which} @{pipes} pipes: particle {k} differs");
                }
            }
            assert_fields_bitwise_eq(&oracle.fields, &sim.fields);
        }
    }
}

/// Random (but ghost-synced) field state for kernel-level comparisons.
fn random_fields(g: &Grid, seed: u64) -> FieldArray {
    let mut f = FieldArray::new(g);
    let mut rng = Rng::seeded(seed);
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let v = g.voxel(i, j, k);
                f.ex[v] = rng.uniform_in(-1.0, 1.0) as f32;
                f.ey[v] = rng.uniform_in(-1.0, 1.0) as f32;
                f.ez[v] = rng.uniform_in(-1.0, 1.0) as f32;
                f.cbx[v] = rng.uniform_in(-1.0, 1.0) as f32;
                f.cby[v] = rng.uniform_in(-1.0, 1.0) as f32;
                f.cbz[v] = rng.uniform_in(-1.0, 1.0) as f32;
                f.jx[v] = rng.uniform_in(-0.1, 0.1) as f32;
                f.jy[v] = rng.uniform_in(-0.1, 0.1) as f32;
                f.jz[v] = rng.uniform_in(-0.1, 0.1) as f32;
            }
        }
    }
    sync_e(&mut f, g, bcs_of(g));
    sync_b(&mut f, g, bcs_of(g));
    f
}

#[test]
fn parallel_field_advance_matches_serial_bitwise() {
    let g = Grid::periodic((9, 6, 7), (0.3, 0.3, 0.3), 0.05);
    let par = random_fields(&g, 77);
    let mut fb_par = par.clone();
    let mut fb_ser = par.clone();
    advance_b(&mut fb_par, &g, 0.5);
    advance_b_serial(&mut fb_ser, &g, 0.5);
    assert_fields_bitwise_eq(&fb_par, &fb_ser);

    let mut fe_par = par.clone();
    let mut fe_ser = par;
    advance_e(&mut fe_par, &g);
    advance_e_serial(&mut fe_ser, &g);
    assert_fields_bitwise_eq(&fe_par, &fe_ser);
}

#[test]
fn parallel_interpolator_load_matches_serial_bitwise() {
    let g = Grid::periodic((8, 7, 6), (0.25, 0.25, 0.25), 0.04);
    let f = random_fields(&g, 31);
    let mut par = InterpolatorArray::new(&g);
    let mut ser = InterpolatorArray::new(&g);
    par.load(&f, &g);
    ser.load_serial(&f, &g);
    for (v, (a, b)) in par.data.iter().zip(ser.data.iter()).enumerate() {
        assert_eq!(a, b, "interpolator {v} differs");
    }
}
