//! Property tests for the particle push beyond continuity: energy
//! invariance under pure magnetic fields, bounded positions, voxel
//! validity, sort invariance of physics, and checkpoint fuzzing.

use proptest::prelude::*;
use vpic_core::accumulator::AccumulatorArray;
use vpic_core::field::FieldArray;
use vpic_core::field_solver::{bcs_of, sync_b, sync_e};
use vpic_core::grid::Grid;
use vpic_core::interpolator::InterpolatorArray;
use vpic_core::particle::Particle;
use vpic_core::push::{advance_p_serial, PushCoefficients};
use vpic_core::sort::sort_by_voxel;

fn grid() -> Grid {
    Grid::periodic((5, 4, 3), (0.7, 0.8, 0.9), 0.25)
}

fn arb_particle() -> impl Strategy<Value = Particle> {
    let g = grid();
    let (sx, sy, _) = g.strides();
    (
        1..=g.nx,
        1..=g.ny,
        1..=g.nz,
        -0.99f32..0.99,
        -0.99f32..0.99,
        -0.99f32..0.99,
        -2.0f32..2.0,
        -2.0f32..2.0,
        -2.0f32..2.0,
        0.5f32..2.0,
    )
        .prop_map(move |(i, j, k, dx, dy, dz, ux, uy, uz, w)| Particle {
            dx,
            dy,
            dz,
            i: (i + sx * j + sx * sy * k) as u32,
            ux,
            uy,
            uz,
            w,
        })
}

fn uniform_b_interp(g: &Grid, bx: f32, by: f32, bz: f32) -> InterpolatorArray {
    let mut f = FieldArray::new(g);
    for v in 0..g.n_voxels() {
        f.cbx[v] = bx;
        f.cby[v] = by;
        f.cbz[v] = bz;
    }
    sync_e(&mut f, g, bcs_of(g));
    sync_b(&mut f, g, bcs_of(g));
    let mut ia = InterpolatorArray::new(g);
    ia.load(&f, g);
    ia
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A magnetic field can never change |u| — for any particle, any B,
    /// any charge sign.
    #[test]
    fn magnetic_push_conserves_speed(
        p in arb_particle(),
        bx in -3.0f32..3.0,
        by in -3.0f32..3.0,
        bz in -3.0f32..3.0,
        q in prop::sample::select(vec![-1.0f32, 1.0, 2.0]),
    ) {
        let g = grid();
        let ia = uniform_b_interp(&g, bx, by, bz);
        let mut acc = AccumulatorArray::new(&g);
        let u2_before = p.ux as f64 * p.ux as f64 + p.uy as f64 * p.uy as f64 + p.uz as f64 * p.uz as f64;
        let mut parts = vec![p];
        advance_p_serial(&mut parts, PushCoefficients::new(q, 1.0, &g), &ia, &mut acc, &g);
        let q2 = &parts[0];
        let u2_after = q2.ux as f64 * q2.ux as f64 + q2.uy as f64 * q2.uy as f64 + q2.uz as f64 * q2.uz as f64;
        prop_assert!(
            (u2_after - u2_before).abs() <= 1e-5 * (1.0 + u2_before),
            "|u|² changed: {u2_before} -> {u2_after}"
        );
    }

    /// After any push, every particle sits in a live voxel with offsets in
    /// [-1, 1] (periodic box: nothing can escape).
    #[test]
    fn positions_stay_valid(parts in proptest::collection::vec(arb_particle(), 1..30)) {
        let g = grid();
        let ia = InterpolatorArray::new(&g);
        let mut acc = AccumulatorArray::new(&g);
        let mut ps = parts;
        let n_before = ps.len();
        let exiles = advance_p_serial(&mut ps, PushCoefficients::new(-1.0, 1.0, &g), &ia, &mut acc, &g);
        prop_assert!(exiles.is_empty());
        prop_assert_eq!(ps.len(), n_before);
        for p in &ps {
            prop_assert!(g.is_live(p.i as usize), "ghost voxel: {:?}", p);
            prop_assert!(p.dx.abs() <= 1.0 && p.dy.abs() <= 1.0 && p.dz.abs() <= 1.0);
        }
    }

    /// Sorting the particle list must not change the deposited current
    /// (same physics, different order) beyond f32 summation noise.
    #[test]
    fn sort_does_not_change_deposition(parts in proptest::collection::vec(arb_particle(), 2..40)) {
        let g = grid();
        let ia = InterpolatorArray::new(&g);
        let c = PushCoefficients::new(-1.0, 1.0, &g);

        let mut a = parts.clone();
        let mut acc_a = AccumulatorArray::new(&g);
        advance_p_serial(&mut a, c, &ia, &mut acc_a, &g);

        let mut b = parts;
        let mut scratch = Vec::new();
        sort_by_voxel(&mut b, g.n_voxels(), &mut scratch);
        let mut acc_b = AccumulatorArray::new(&g);
        advance_p_serial(&mut b, c, &ia, &mut acc_b, &g);

        let mut fa = FieldArray::new(&g);
        acc_a.unload(&mut fa, &g);
        let mut fb = FieldArray::new(&g);
        acc_b.unload(&mut fb, &g);
        let scale: f32 = fa.jx.iter().map(|v| v.abs()).fold(0.0, f32::max).max(1e-12);
        for (x, y) in fa.jx.iter().zip(fb.jx.iter()) {
            prop_assert!((x - y).abs() <= 1e-4 * scale, "jx differs: {x} vs {y}");
        }
    }

    /// Checkpoint fuzz: corrupting any single byte of a dump must yield
    /// either a clean error or a loadable (if wrong-valued) simulation —
    /// never a panic or out-of-range state.
    #[test]
    fn checkpoint_survives_single_byte_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        use vpic_core::sim::Simulation;
        use vpic_core::species::Species;
        let g = grid();
        let mut sim = Simulation::new(g, 1);
        let mut sp = Species::new("e", -1.0, 1.0);
        sp.push(Particle { i: sim.grid.voxel(2, 2, 2) as u32, w: 1.0, ..Default::default() });
        sim.add_species(sp);
        let mut dump = Vec::new();
        vpic_core::checkpoint::save(&sim, &mut dump).unwrap();
        let pos = ((dump.len() - 1) as f64 * pos_frac) as usize;
        dump[pos] ^= 1 << bit;
        match vpic_core::checkpoint::load(&mut dump.as_slice(), 1) {
            Err(_) => {}
            Ok(restored) => {
                // If it loaded, every particle must reference a voxel that
                // exists in the (possibly corrupted) grid.
                for sp in &restored.species {
                    for p in sp.iter() {
                        prop_assert!((p.i as usize) < restored.grid.n_voxels());
                    }
                }
            }
        }
    }
}

/// Energy-conserving interpolation sanity: in a linear-in-x `Ex` the work
/// done over a closed periodic orbit of the *field solver + push* system
/// still conserves total energy (done at test scale in `sim` tests); here
/// we pin the simpler identity that a zero-field push is exactly
/// ballistic.
#[test]
fn zero_field_push_is_ballistic() {
    let g = grid();
    let ia = InterpolatorArray::new(&g);
    let mut acc = AccumulatorArray::new(&g);
    let u = (0.3f32, -0.2f32, 0.1f32);
    let mut parts = vec![Particle {
        i: g.voxel(2, 2, 2) as u32,
        ux: u.0,
        uy: u.1,
        uz: u.2,
        w: 1.0,
        ..Default::default()
    }];
    for _ in 0..10 {
        advance_p_serial(
            &mut parts,
            PushCoefficients::new(-1.0, 1.0, &g),
            &ia,
            &mut acc,
            &g,
        );
        assert_eq!((parts[0].ux, parts[0].uy, parts[0].uz), u);
    }
}
