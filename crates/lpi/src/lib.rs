//! # vpic-lpi
//!
//! Laser–plasma interaction workloads for the VPIC reproduction — the
//! physics campaign of the SC'08 paper (stimulated Raman backscatter of a
//! laser in a hohlraum-like plasma) reduced to laptop-scale quasi-1D runs
//! that exercise identical code paths.
//!
//! * [`laser`] — current-sheet antenna injection;
//! * [`profile`] — slab density profiles;
//! * [`srs`] — SRS linear theory (matching, growth, Landau damping, gain);
//! * [`three_wave`] — fluid coupled-mode baseline (no trapping physics);
//! * [`setup`] — assembled [`setup::LpiRun`] with reflectivity probe;
//! * [`campaign`] — fault-tolerant serial campaign runtime (sentinel,
//!   checkpoints, rollback, graceful degradation).

pub mod campaign;
pub mod laser;
pub mod profile;
pub mod sbs;
pub mod setup;
pub mod srs;
pub mod sweep;
pub mod three_wave;

pub use campaign::{
    run_lpi_campaign, run_lpi_campaign_with, LpiCampaignConfig, LpiCampaignEnd, LpiCampaignError,
    LpiCampaignOutcome, LpiRecovery,
};
pub use laser::{LaserAntenna, Polarization};
pub use profile::SlabProfile;
pub use sbs::{sbs_match, SbsMatch};
pub use setup::{LpiParams, LpiRun};
pub use srs::{srs_match, SrsMatch};
pub use sweep::{
    ReflectivityCurve, SweepConfig, SweepEnd, SweepError, SweepGrid, SweepKillPlan, SweepOutcome,
    SweepPoint, SweepProgress, SweepRunner,
};
pub use three_wave::{reflectivity_curve, tang_reflectivity, ThreeWaveModel, ThreeWaveResult};
