//! Exactly-once curve aggregation and the sweep's machine-readable
//! artifacts: `reflectivity_curve.json` (the physics deliverable) and
//! the `vpic-bench/sweep/v1` service-level record.
//!
//! A [`PointResult`] is the opaque payload of a `Done` journal record —
//! a fixed little-endian encoding of the end-state digest the campaign
//! runtime reports. Floats are carried as raw bits (and printed with
//! their bit pattern alongside the decimal value), so "the killed and
//! restarted sweep produced the same curve" is checkable byte-for-byte
//! on the JSON artifact itself.

use std::fmt::Write as _;
use std::path::Path;

use vpic_core::queue::QueueStats;

use super::grid::SweepPoint;

/// Schema identifier for the sweep service bench record.
pub const SWEEP_BENCH_SCHEMA: &str = "vpic-bench/sweep/v1";

/// Schema identifier for the reflectivity curve artifact.
pub const CURVE_SCHEMA: &str = "vpic-lpi/reflectivity-curve/v1";

/// Schema identifier for the *progressive* curve artifact the sweep
/// service streams while jobs are still running.
pub const PARTIAL_CURVE_SCHEMA: &str = "vpic-lpi/reflectivity-curve-partial/v1";

/// End-state digest of one completed sweep job (the `Done` payload).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointResult {
    /// Spec fingerprint of the job that produced this result; decode
    /// cross-checks it against the queue so a payload can never be
    /// folded into the wrong grid point.
    pub fingerprint: u64,
    /// Time-averaged power reflectivity at the probe plane.
    pub reflectivity: f64,
    /// Total field + kinetic energy at the end state.
    pub energy: f64,
    pub n_particles: u64,
    /// Avalanche fingerprint of the end state's v2 dump bytes (see
    /// `vpic_core::crc32::fingerprint32` for why this is not a plain CRC).
    pub state_fingerprint: u32,
}

impl PointResult {
    /// Fixed-width little-endian encoding (36 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(36);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.reflectivity.to_bits().to_le_bytes());
        out.extend_from_slice(&self.energy.to_bits().to_le_bytes());
        out.extend_from_slice(&self.n_particles.to_le_bytes());
        out.extend_from_slice(&self.state_fingerprint.to_le_bytes());
        out
    }

    /// Decode a `Done` payload; anything but exactly 36 bytes is a
    /// malformed record, reported as `Err(reason)`.
    pub fn decode(bytes: &[u8]) -> Result<PointResult, String> {
        if bytes.len() != 36 {
            return Err(format!(
                "point result payload is {} bytes, expected 36",
                bytes.len()
            ));
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        Ok(PointResult {
            fingerprint: u64_at(0),
            reflectivity: f64::from_bits(u64_at(8)),
            energy: f64::from_bits(u64_at(16)),
            n_particles: u64_at(24),
            state_fingerprint: u32::from_le_bytes(bytes[32..36].try_into().unwrap()),
        })
    }
}

/// One aggregated grid point: either a result or a quarantine record.
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    pub point: SweepPoint,
    /// Failed attempts charged against the job (0 for a job that only
    /// ever lost its lease to orchestrator kills — those are free).
    pub attempts: u32,
    /// `Some` iff the job reached `Done`.
    pub result: Option<PointResult>,
    /// Quarantine cause for poisoned jobs.
    pub quarantined: Option<String>,
}

/// The aggregated sweep deliverable, in job-id order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReflectivityCurve {
    /// Steps each point was driven for.
    pub steps: u64,
    pub points: Vec<CurvePoint>,
}

impl ReflectivityCurve {
    /// Points that finished.
    pub fn done(&self) -> usize {
        self.points.iter().filter(|p| p.result.is_some()).count()
    }

    /// Points that were quarantined.
    pub fn quarantined(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.quarantined.is_some())
            .count()
    }

    /// Serialize to pretty-printed JSON. The output is a pure function
    /// of the curve contents — no clocks, no paths — so bit-identical
    /// sweeps produce byte-identical artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{CURVE_SCHEMA}\",");
        let _ = writeln!(s, "  \"steps\": {},", self.steps);
        let _ = writeln!(s, "  \"points_done\": {},", self.done());
        let _ = writeln!(s, "  \"points_quarantined\": {},", self.quarantined());
        let _ = writeln!(s, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = write!(
                s,
                "    {{\"job\": {}, \"a0\": {:e}, \"n_over_ncr\": {:e}, \"vth\": {:e}, \
                 \"attempts\": {}, ",
                p.point.job_id, p.point.a0, p.point.n_over_ncr, p.point.vth, p.attempts
            );
            match (&p.result, &p.quarantined) {
                (Some(r), _) => {
                    let _ = write!(
                        s,
                        "\"status\": \"done\", \"reflectivity\": {:e}, \
                         \"reflectivity_bits\": \"{:#018x}\", \"energy\": {:e}, \
                         \"n_particles\": {}, \"state_fingerprint\": \"{:#010x}\"",
                        r.reflectivity,
                        r.reflectivity.to_bits(),
                        r.energy,
                        r.n_particles,
                        r.state_fingerprint
                    );
                }
                (None, Some(cause)) => {
                    let _ = write!(
                        s,
                        "\"status\": \"quarantined\", \"cause\": \"{}\"",
                        json_escape(cause)
                    );
                }
                (None, None) => {
                    let _ = write!(s, "\"status\": \"unsettled\"");
                }
            }
            let _ = writeln!(s, "}}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }
}

/// Where one grid point stands while the sweep is still in flight.
#[derive(Clone, Debug, PartialEq)]
pub enum PartialStatus {
    /// Not started (or waiting out retry backoff).
    Pending,
    /// An attempt is running; `certified_step` is its last durable
    /// checkpoint and `reflectivity` the provisional value read from the
    /// job's streaming `progress.json` (absent when `diag = off`).
    Running {
        certified_step: u64,
        reflectivity: Option<f64>,
    },
    /// Settled with a result.
    Done { reflectivity: f64 },
    /// Settled by quarantine.
    Quarantined { cause: String },
}

/// One grid point of the progressive artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct PartialPoint {
    pub point: SweepPoint,
    pub attempts: u32,
    pub status: PartialStatus,
}

/// The progressive sweep deliverable: a best-effort snapshot of the
/// curve-in-progress, written atomically to
/// `reflectivity_curve.partial.json` at every job transition and every
/// certified checkpoint of the running job. Purely observational — the
/// WAL stays the source of truth, and the settled
/// `reflectivity_curve.json` is still aggregated exactly-once from
/// `Done` records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartialCurve {
    pub steps: u64,
    pub points: Vec<PartialPoint>,
}

impl PartialCurve {
    pub fn done(&self) -> usize {
        self.points
            .iter()
            .filter(|p| matches!(p.status, PartialStatus::Done { .. }))
            .count()
    }

    /// Serialize to pretty-printed JSON. Like the settled curve this is
    /// a pure function of its contents, so two observers of the same
    /// queue state write byte-identical files.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{PARTIAL_CURVE_SCHEMA}\",");
        let _ = writeln!(s, "  \"steps\": {},", self.steps);
        let _ = writeln!(s, "  \"points_total\": {},", self.points.len());
        let _ = writeln!(s, "  \"points_done\": {},", self.done());
        let _ = writeln!(s, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = write!(
                s,
                "    {{\"job\": {}, \"a0\": {:e}, \"n_over_ncr\": {:e}, \"vth\": {:e}, \
                 \"attempts\": {}, ",
                p.point.job_id, p.point.a0, p.point.n_over_ncr, p.point.vth, p.attempts
            );
            match &p.status {
                PartialStatus::Pending => {
                    let _ = write!(s, "\"status\": \"pending\"");
                }
                PartialStatus::Running {
                    certified_step,
                    reflectivity,
                } => {
                    let _ = write!(
                        s,
                        "\"status\": \"running\", \"certified_step\": {certified_step}, \
                         \"reflectivity\": "
                    );
                    match reflectivity {
                        Some(r) => {
                            let _ = write!(s, "{r:e}");
                        }
                        None => {
                            let _ = write!(s, "null");
                        }
                    }
                }
                PartialStatus::Done { reflectivity } => {
                    let _ = write!(
                        s,
                        "\"status\": \"done\", \"reflectivity\": {:e}, \
                         \"reflectivity_bits\": \"{:#018x}\"",
                        reflectivity,
                        reflectivity.to_bits()
                    );
                }
                PartialStatus::Quarantined { cause } => {
                    let _ = write!(
                        s,
                        "\"status\": \"quarantined\", \"cause\": \"{}\"",
                        json_escape(cause)
                    );
                }
            }
            let _ = writeln!(s, "}}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }
}

/// Service-level counters for the `vpic-bench/sweep/v1` record: how the
/// sweep *ran*, as opposed to what it measured. Wall-clock lives here —
/// never in the curve — so the physics artifact stays bit-comparable.
#[derive(Clone, Debug)]
pub struct SweepBench {
    pub jobs: usize,
    pub done: usize,
    pub quarantined: usize,
    /// Failed attempts across all jobs (retries + quarantines).
    pub retries: u64,
    /// Orchestrator restarts observed by this journal (replays).
    pub restarts: u64,
    /// Simulation steps executed by this invocation.
    pub steps_executed: u64,
    /// Wall-clock seconds this invocation spent.
    pub wall_seconds: f64,
    /// Completed grid points per wall-clock hour, extrapolated from
    /// this invocation.
    pub points_per_hour: f64,
}

impl SweepBench {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SWEEP_BENCH_SCHEMA}\",");
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"done\": {},", self.done);
        let _ = writeln!(s, "  \"quarantined\": {},", self.quarantined);
        let _ = writeln!(s, "  \"retries\": {},", self.retries);
        let _ = writeln!(s, "  \"restarts\": {},", self.restarts);
        let _ = writeln!(s, "  \"steps_executed\": {},", self.steps_executed);
        let _ = writeln!(s, "  \"wall_seconds\": {:e},", self.wall_seconds);
        let _ = writeln!(s, "  \"points_per_hour\": {:e}", self.points_per_hour);
        let _ = write!(s, "}}");
        s
    }

    /// Build from queue stats plus this invocation's counters.
    pub fn from_stats(
        stats: &QueueStats,
        jobs: usize,
        restarts: u64,
        steps_executed: u64,
        wall_seconds: f64,
        done_this_run: usize,
    ) -> SweepBench {
        SweepBench {
            jobs,
            done: stats.done,
            quarantined: stats.quarantined,
            retries: stats.total_failures,
            restarts,
            steps_executed,
            wall_seconds,
            points_per_hour: if wall_seconds > 0.0 {
                done_this_run as f64 * 3_600.0 / wall_seconds
            } else {
                0.0
            },
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Used by `e5_reflectivity --from-curve`: parse the `"reflectivity":`
/// values back out of a curve artifact without a JSON dependency, in
/// file order. Quarantined points contribute nothing.
pub fn parse_curve_reflectivities(json: &str) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(a0_idx) = line.find("\"a0\": ") else {
            continue;
        };
        let a0 = line[a0_idx + 6..]
            .split(&[',', '}'][..])
            .next()
            .and_then(|v| v.trim().parse::<f64>().ok());
        let refl = line.find("\"reflectivity\": ").and_then(|i| {
            line[i + 16..]
                .split(&[',', '}'][..])
                .next()
                .and_then(|v| v.trim().parse::<f64>().ok())
        });
        if let (Some(a0), Some(r)) = (a0, refl) {
            out.push((a0, r));
        }
    }
    out
}

/// Atomic JSON artifact write (tmp + fsync + rename), shared with the
/// scheduler.
pub(crate) fn write_json_atomic(path: &Path, json: &str) -> std::io::Result<()> {
    crate::campaign::write_atomic(path, json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> PointResult {
        PointResult {
            fingerprint: 0x1122_3344_5566_7788,
            reflectivity: 1.25e-4,
            energy: 42.0625,
            n_particles: 123_456,
            state_fingerprint: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn point_result_roundtrips() {
        let r = result();
        let bytes = r.encode();
        assert_eq!(bytes.len(), 36);
        assert_eq!(PointResult::decode(&bytes).unwrap(), r);
        assert!(PointResult::decode(&bytes[..32]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(PointResult::decode(&long).is_err());
    }

    #[test]
    fn curve_json_is_deterministic_and_parseable() {
        let curve = ReflectivityCurve {
            steps: 100,
            points: vec![
                CurvePoint {
                    point: SweepPoint {
                        job_id: 0,
                        a0: 0.01,
                        n_over_ncr: 0.1,
                        vth: 0.07,
                    },
                    attempts: 0,
                    result: Some(result()),
                    quarantined: None,
                },
                CurvePoint {
                    point: SweepPoint {
                        job_id: 1,
                        a0: 0.02,
                        n_over_ncr: 0.1,
                        vth: 0.07,
                    },
                    attempts: 3,
                    result: None,
                    quarantined: Some("out of attempts: \"boom\"".into()),
                },
            ],
        };
        let json = curve.to_json();
        assert_eq!(json, curve.to_json(), "serialization must be pure");
        assert!(json.contains("\"schema\": \"vpic-lpi/reflectivity-curve/v1\""));
        assert!(json.contains("\"points_done\": 1"));
        assert!(json.contains("\"points_quarantined\": 1"));
        let expected_bits = format!("\"reflectivity_bits\": \"{:#018x}\"", 1.25e-4f64.to_bits());
        assert!(json.contains(&expected_bits), "{json}");
        assert!(json.contains("\\\"boom\\\""), "cause must be escaped");
        let vals = parse_curve_reflectivities(&json);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].0, 0.01);
        assert_eq!(vals[0].1.to_bits(), 1.25e-4f64.to_bits());
    }

    #[test]
    fn partial_curve_json_covers_every_status() {
        let point = |job_id| SweepPoint {
            job_id,
            a0: 0.01,
            n_over_ncr: 0.1,
            vth: 0.07,
        };
        let curve = PartialCurve {
            steps: 100,
            points: vec![
                PartialPoint {
                    point: point(0),
                    attempts: 0,
                    status: PartialStatus::Pending,
                },
                PartialPoint {
                    point: point(1),
                    attempts: 0,
                    status: PartialStatus::Running {
                        certified_step: 40,
                        reflectivity: Some(2.5e-3),
                    },
                },
                PartialPoint {
                    point: point(2),
                    attempts: 1,
                    status: PartialStatus::Running {
                        certified_step: 10,
                        reflectivity: None,
                    },
                },
                PartialPoint {
                    point: point(3),
                    attempts: 0,
                    status: PartialStatus::Done {
                        reflectivity: 1.25e-4,
                    },
                },
                PartialPoint {
                    point: point(4),
                    attempts: 3,
                    status: PartialStatus::Quarantined {
                        cause: "boom \"quoted\"".into(),
                    },
                },
            ],
        };
        let json = curve.to_json();
        assert_eq!(json, curve.to_json(), "serialization must be pure");
        assert!(json.contains("\"schema\": \"vpic-lpi/reflectivity-curve-partial/v1\""));
        assert!(json.contains("\"points_total\": 5"));
        assert!(json.contains("\"points_done\": 1"));
        assert!(json.contains("\"status\": \"pending\""));
        assert!(json.contains("\"certified_step\": 40, \"reflectivity\": 2.5e-3"));
        assert!(json.contains("\"certified_step\": 10, \"reflectivity\": null"));
        let bits = format!("\"reflectivity_bits\": \"{:#018x}\"", 1.25e-4f64.to_bits());
        assert!(json.contains(&bits), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "cause must be escaped");
        assert_eq!(curve.done(), 1);
    }

    #[test]
    fn bench_record_has_service_counters() {
        let stats = QueueStats {
            done: 5,
            quarantined: 1,
            total_failures: 4,
            ..Default::default()
        };
        let b = SweepBench::from_stats(&stats, 6, 2, 1_200, 60.0, 5);
        let json = b.to_json();
        assert!(json.contains("\"schema\": \"vpic-bench/sweep/v1\""));
        assert!(json.contains("\"retries\": 4"));
        assert!(json.contains("\"restarts\": 2"));
        assert!((b.points_per_hour - 300.0).abs() < 1e-9);
    }
}
