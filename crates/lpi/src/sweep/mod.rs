//! Crash-proof reflectivity-sweep service.
//!
//! The paper's headline deliverable is not one run but a *curve*:
//! SRS backscatter reflectivity as a function of laser intensity,
//! density and electron temperature (Fig. 4 territory). This module
//! turns that campaign of campaigns into a service that survives being
//! killed at any instant:
//!
//! * [`grid::SweepGrid`] — templates the base deck over an
//!   `(a0, n/ncr, vth)` grid; every grid point is a job with a stable
//!   id and a spec fingerprint.
//! * [`scheduler::SweepRunner`] — drives jobs through the
//!   fault-tolerant [`crate::campaign`] runtime, journaling every job
//!   transition (`Pending → Leased → Running → Done | Failed |
//!   Quarantined`) to a write-ahead log (`vpic_core::journal`) *before*
//!   acting on it. A restarted runner replays the log, releases orphaned
//!   leases without charging an attempt, and resumes each in-flight job
//!   from its last certified checkpoint — the finished curve is
//!   **bit-identical** with an unkilled sweep's.
//! * Failed attempts retry with exponential backoff and seeded jitter
//!   ([`vpic_core::queue::RetryPolicy`]); a job that fails
//!   `max_attempts` times is quarantined (its flight recorder and
//!   partial dump are already on disk in the job's checkpoint
//!   directory) and the sweep completes over the surviving points.
//! * [`curve::ReflectivityCurve`] — exactly-once aggregation: the curve
//!   is folded only from `Done` journal records, in job-id order, and
//!   written atomically as `reflectivity_curve.json` next to a
//!   `vpic-bench/sweep/v1` service-level record.

pub mod curve;
pub mod grid;
pub mod scheduler;

pub use curve::{
    parse_curve_reflectivities, CurvePoint, PartialCurve, PartialPoint, PartialStatus, PointResult,
    ReflectivityCurve, PARTIAL_CURVE_SCHEMA, SWEEP_BENCH_SCHEMA,
};
pub use grid::{SweepGrid, SweepPoint};
pub use scheduler::{
    SweepConfig, SweepEnd, SweepError, SweepKillPlan, SweepOutcome, SweepProgress, SweepRunner,
    BENCH_NAME, CURVE_NAME, PARTIAL_NAME, WAL_NAME,
};
