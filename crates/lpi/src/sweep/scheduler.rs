//! The WAL-backed sweep orchestrator.
//!
//! One [`SweepRunner::run`] call is one orchestrator *incarnation*: it
//! opens (or creates) `sweep.wal` in the sweep directory, replays it
//! through the [`JobQueue`] state machine, reconciles the queue against
//! the grid spec (defining any jobs the journal does not know — this is
//! also what makes a salvaged torn-tail journal safe), releases leases
//! orphaned by a previous incarnation's death **without charging an
//! attempt**, and then drains the queue serially: lease → start → run
//! the campaign → done/failed. Every transition is journaled *before*
//! it is acted on.
//!
//! Campaign checkpoints double as heartbeats: the campaign's
//! checkpoint hook appends a `Progress` record (certified step + lease
//! extension) each time a checkpoint generation becomes durable. A
//! killed incarnation therefore leaves behind exactly the information
//! the next one needs to resume the in-flight job from its last
//! certified checkpoint — the job's physics is never re-run from
//! scratch, and the finished curve is bit-identical with an unkilled
//! sweep's because checkpointed replay is bit-exact.
//!
//! Time is logical (milliseconds, 1 step ≙ 1 ms): lease deadlines and
//! retry backoff never read the wall clock, so scheduling decisions
//! replay deterministically. Wall time appears only in the
//! service-level bench record.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vpic_core::journal::{Journal, JournalError, ReplayReport};
use vpic_core::queue::{JobEvent, JobQueue, JobState, QueueError, QueueStats, RetryPolicy};
use vpic_core::sentinel::{CorruptionPlan, SentinelConfig};

use crate::campaign::{run_lpi_campaign_with, LpiCampaignConfig, LpiCampaignEnd, LpiCampaignError};
use crate::setup::LpiParams;

use super::curve::{
    write_json_atomic, CurvePoint, PartialCurve, PartialPoint, PartialStatus, PointResult,
    ReflectivityCurve, SweepBench,
};
use super::grid::SweepGrid;

/// Name of the write-ahead journal inside the sweep directory.
pub const WAL_NAME: &str = "sweep.wal";
/// Name of the aggregated curve artifact.
pub const CURVE_NAME: &str = "reflectivity_curve.json";
/// Name of the progressive curve artifact, refreshed atomically while
/// the sweep is still running (see [`PartialCurve`]).
pub const PARTIAL_NAME: &str = "reflectivity_curve.partial.json";
/// Name of the service-level bench record.
pub const BENCH_NAME: &str = "BENCH_sweep.json";

/// Orchestrator kill switch for chaos tests: model `kill -9` of the
/// whole sweep service at a seeded instant. The runner returns
/// [`SweepEnd::Killed`] *without journaling anything further* — exactly
/// the on-disk state a real SIGKILL leaves behind.
#[derive(Clone, Debug, Default)]
pub struct SweepKillPlan {
    /// Die at the Nth checkpoint certification (1-based, counted
    /// across jobs) of this incarnation; the certification's `Progress`
    /// record is journaled before death, like a SIGKILL landing right
    /// after an fsync.
    pub after_certifications: Option<u64>,
    /// Die right after journaling the `Leased` record for this job id
    /// (before `Started`): exercises orphaned-lease release from the
    /// `Leased` state.
    pub before_job: Option<u64>,
}

impl SweepKillPlan {
    pub fn is_armed(&self) -> bool {
        self.after_certifications.is_some() || self.before_job.is_some()
    }
}

/// Everything a sweep needs beyond the grid itself.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Deck template; each grid point overrides `(a0, n_over_ncr, vth)`
    /// and reseeds deterministically.
    pub base: LpiParams,
    /// Steps to drive every point for.
    pub steps: u64,
    /// Campaign checkpoint cadence (also the heartbeat cadence).
    pub checkpoint_interval: u64,
    /// Sweep directory: WAL, per-job checkpoint dirs and artifacts.
    pub sweep_dir: PathBuf,
    /// Retry/backoff/quarantine policy.
    pub retry: RetryPolicy,
    /// Lease duration granted per heartbeat, in logical ms.
    pub lease_ms: u64,
    /// In-campaign recovery budget per attempt. Kept small: retries are
    /// the *sweep's* job, and a degraded campaign surfaces here as a
    /// failed attempt with its flight recorder already on disk.
    pub campaign_max_recoveries: u32,
    /// Sentinel thresholds applied to every job's campaign.
    pub sentinel: SentinelConfig,
    /// Per-(job, attempt) corruption injection for chaos tests; `None`
    /// entries inherit nothing. Keyed so a poison job can fail every
    /// attempt while a flaky one fails only its first.
    pub corruption_for: Vec<(u64, Option<u32>, CorruptionPlan)>,
    /// Orchestrator kill plan (chaos tests only).
    pub kill: SweepKillPlan,
}

impl SweepConfig {
    /// Sweep with default service knobs.
    pub fn new(
        base: LpiParams,
        steps: u64,
        checkpoint_interval: u64,
        dir: impl Into<PathBuf>,
    ) -> Self {
        SweepConfig {
            base,
            steps,
            checkpoint_interval,
            sweep_dir: dir.into(),
            retry: RetryPolicy::default(),
            lease_ms: 10_000,
            campaign_max_recoveries: 1,
            sentinel: SentinelConfig::enabled(),
            corruption_for: Vec::new(),
            kill: SweepKillPlan::default(),
        }
    }

    fn corruption(&self, job: u64, attempt: u32) -> Option<CorruptionPlan> {
        self.corruption_for
            .iter()
            .find(|(j, a, _)| *j == job && (a.is_none() || *a == Some(attempt)))
            .map(|(_, _, plan)| plan.clone())
    }
}

/// How an incarnation ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepEnd {
    /// Queue settled: every job done or quarantined; artifacts written.
    Completed,
    /// The kill plan fired; the WAL holds an in-flight job for the next
    /// incarnation.
    Killed,
}

/// What one incarnation did.
#[derive(Debug)]
pub struct SweepOutcome {
    pub end: SweepEnd,
    /// Queue state at exit.
    pub stats: QueueStats,
    /// Aggregated curve (settled sweeps only).
    pub curve: Option<ReflectivityCurve>,
    /// Path of the written curve artifact (settled sweeps only).
    pub curve_path: Option<PathBuf>,
    /// What WAL replay found at open.
    pub replay: ReplayReport,
    /// Leases released because a previous incarnation died holding them.
    pub orphans_released: Vec<u64>,
    /// Simulation steps executed per job by *this incarnation* — the
    /// step-accounting ledger chaos tests audit to prove no physics was
    /// re-run past a certified checkpoint.
    pub steps_by_job: BTreeMap<u64, u64>,
    /// Attempts launched by this incarnation.
    pub attempts_launched: u64,
}

/// Typed sweep-service failure (the queue still on disk is intact).
#[derive(Debug)]
pub enum SweepError {
    Io(std::io::Error),
    Journal(JournalError),
    Queue(QueueError),
    Campaign(LpiCampaignError),
    /// A `Done` payload failed to decode or cross-check.
    MalformedResult {
        job: u64,
        reason: String,
    },
    /// The grid has no points.
    EmptyGrid,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep io: {e}"),
            SweepError::Journal(e) => write!(f, "sweep journal: {e}"),
            SweepError::Queue(e) => write!(f, "sweep queue: {e}"),
            SweepError::Campaign(e) => write!(f, "sweep campaign: {e}"),
            SweepError::MalformedResult { job, reason } => {
                write!(f, "job {job}: malformed result payload: {reason}")
            }
            SweepError::EmptyGrid => write!(f, "sweep grid has no points"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}
impl From<JournalError> for SweepError {
    fn from(e: JournalError) -> Self {
        SweepError::Journal(e)
    }
}
impl From<QueueError> for SweepError {
    fn from(e: QueueError) -> Self {
        SweepError::Queue(e)
    }
}
impl From<LpiCampaignError> for SweepError {
    fn from(e: LpiCampaignError) -> Self {
        SweepError::Campaign(e)
    }
}

/// A job-level progress event, emitted by
/// [`SweepRunner::run_with_progress`] as the queue drains. Purely
/// observational: the WAL, not the observer, is the source of truth.
#[derive(Clone, Debug)]
pub enum SweepProgress {
    /// An attempt on `job` began (its `Started` record is durable).
    Started {
        job: u64,
        attempt: u32,
        a0: f64,
        n_over_ncr: f64,
        vth: f64,
    },
    /// `job` finished; its point joins the curve.
    Done {
        job: u64,
        attempt: u32,
        reflectivity: f64,
        /// Jobs done so far / total grid points.
        done: usize,
        total: usize,
    },
    /// An attempt failed; the job retries once the clock reaches
    /// `ready_at_ms`.
    Failed {
        job: u64,
        attempt: u32,
        ready_at_ms: u64,
        cause: String,
    },
    /// `job` is poison: quarantined, the sweep continues without it.
    Quarantined { job: u64, cause: String },
}

/// The orchestrator. Construct once per incarnation and call
/// [`SweepRunner::run`].
pub struct SweepRunner {
    grid: SweepGrid,
    cfg: SweepConfig,
}

impl SweepRunner {
    pub fn new(grid: SweepGrid, cfg: SweepConfig) -> SweepRunner {
        SweepRunner { grid, cfg }
    }

    /// Per-job checkpoint directory.
    fn job_dir(&self, job: u64) -> PathBuf {
        self.cfg.sweep_dir.join(format!("job_{job:06}"))
    }

    /// Snapshot the queue into progressive-curve points (grid order).
    /// Jobs that are leased/running/backing-off all read as `Pending`
    /// here; the checkpoint hook overlays the live `Running` status for
    /// the one job this serial incarnation is actually driving.
    fn partial_points(&self, queue: &JobQueue) -> Vec<PartialPoint> {
        self.grid
            .points()
            .map(|point| {
                let job = queue.job(point.job_id).expect("grid job is defined");
                let status = match (&job.state, &job.result) {
                    (JobState::Done, Some(bytes)) => match PointResult::decode(bytes) {
                        Ok(r) => PartialStatus::Done {
                            reflectivity: r.reflectivity,
                        },
                        Err(_) => PartialStatus::Pending,
                    },
                    (JobState::Quarantined, _) => PartialStatus::Quarantined {
                        cause: job.last_cause.clone().unwrap_or_default(),
                    },
                    _ => PartialStatus::Pending,
                };
                PartialPoint {
                    point,
                    attempts: job.attempts,
                    status,
                }
            })
            .collect()
    }

    /// Refresh `reflectivity_curve.partial.json`. Best-effort by design:
    /// a failed write of the progress artifact must never fail the sweep
    /// (the WAL is the source of truth).
    fn write_partial(&self, points: Vec<PartialPoint>) {
        let curve = PartialCurve {
            steps: self.cfg.steps,
            points,
        };
        let _ = write_json_atomic(&self.cfg.sweep_dir.join(PARTIAL_NAME), &curve.to_json());
    }

    /// Charge one failed attempt, following the queue's canonical retry
    /// protocol: a `Failed` record (with its backoff gate) for *every*
    /// failure, then — out of attempts — the terminal `Quarantined`
    /// marker, so `attempts`/`total_failures` count exactly N charged
    /// attempts when a poison job lands in quarantine.
    #[allow(clippy::too_many_arguments)]
    fn fail_attempt(
        &self,
        append: &dyn Fn(&JobEvent) -> Result<(), SweepError>,
        queue: &mut JobQueue,
        progress: &(dyn Fn(&SweepProgress) + Sync),
        id: u64,
        attempt: u32,
        clock_ms: u64,
        cause: String,
    ) -> Result<(), SweepError> {
        let ready_at_ms = clock_ms + self.cfg.retry.backoff_ms(id, attempt);
        let ev = JobEvent::Failed {
            id,
            attempt,
            ready_at_ms,
            cause: cause.clone(),
        };
        append(&ev)?;
        queue.apply(&ev)?;
        if attempt >= self.cfg.retry.max_attempts {
            let ev = JobEvent::Quarantined {
                id,
                cause: cause.clone(),
            };
            append(&ev)?;
            queue.apply(&ev)?;
            progress(&SweepProgress::Quarantined { job: id, cause });
        } else {
            progress(&SweepProgress::Failed {
                job: id,
                attempt,
                ready_at_ms,
                cause,
            });
        }
        Ok(())
    }

    /// Drain the queue (or die trying, per the kill plan).
    pub fn run(&self) -> Result<SweepOutcome, SweepError> {
        self.run_with_progress(&|_| {})
    }

    /// [`SweepRunner::run`] with a job-level progress observer (used by
    /// `vpic-run` to narrate long sweeps).
    pub fn run_with_progress(
        &self,
        progress: &(dyn Fn(&SweepProgress) + Sync),
    ) -> Result<SweepOutcome, SweepError> {
        if self.grid.is_empty() {
            return Err(SweepError::EmptyGrid);
        }
        let wall_start = Instant::now();
        std::fs::create_dir_all(&self.cfg.sweep_dir)?;
        let wal_path = self.cfg.sweep_dir.join(WAL_NAME);

        // Replay. Records that fail to decode or apply are a typed
        // error: the WAL is CRC-clean (the journal layer verified it),
        // so a bad event means a software bug or a foreign journal, and
        // silently dropping a job transition could re-run or lose work.
        let mut queue = JobQueue::new();
        let mut replay_defect: Option<SweepError> = None;
        let (journal, replay) = Journal::open(&wal_path, |payload| {
            if replay_defect.is_some() {
                return;
            }
            match JobEvent::decode(payload) {
                Ok(ev) => {
                    if let Err(e) = queue.apply(&ev) {
                        replay_defect = Some(SweepError::Queue(e));
                    }
                }
                Err(e) => replay_defect = Some(SweepError::Queue(e)),
            }
        })?;
        if let Some(defect) = replay_defect {
            return Err(defect);
        }
        let journal = Mutex::new(journal);
        let append = |ev: &JobEvent| -> Result<(), SweepError> {
            journal
                .lock()
                .expect("journal lock poisoned")
                .append(&ev.encode())
                .map_err(SweepError::from)
        };

        // Reconcile against the spec: (re)define every grid point. The
        // queue validates fingerprints, so a journal from a different
        // sweep is rejected here instead of silently misapplied, and a
        // torn-tail salvage that dropped a `Defined` record is healed.
        // Jobs the journal already knows are journaled again anyway
        // (`Defined` is idempotent): the WAL grows by one record per
        // job per restart, a price worth paying for reconciliation
        // that needs no out-of-band spec file.
        for point in self.grid.points() {
            let ev = JobEvent::Defined {
                id: point.job_id,
                fingerprint: point.fingerprint(&self.cfg.base, self.cfg.steps),
            };
            queue.apply(&ev)?;
            append(&ev)?;
        }

        // A previous incarnation's in-process workers died with it:
        // release their leases without charging attempts, and journal
        // each release (the dead incarnation could not journal its own
        // death; without the `Released` record the next replay would
        // see an illegal `Leased`-from-`Running` transition). The
        // certified step survives, so released jobs resume, not
        // restart.
        let orphans_released: Vec<u64> = queue
            .jobs()
            .filter(|j| matches!(j.state, JobState::Leased { .. } | JobState::Running { .. }))
            .map(|j| j.id)
            .collect();
        for &id in &orphans_released {
            let ev = JobEvent::Released { id };
            append(&ev)?;
            queue.apply(&ev)?;
        }

        let mut clock_ms: u64 = queue.jobs().map(|j| j.ready_at_ms).max().unwrap_or(0);
        let certifications = AtomicU64::new(0);
        let mut steps_by_job: BTreeMap<u64, u64> = BTreeMap::new();
        let mut attempts_launched = 0u64;

        // Kill before a specific job's Started record?
        let mut outcome_end = SweepEnd::Completed;

        // First progressive artifact: the reconciled queue as found on
        // disk, before this incarnation runs any physics.
        self.write_partial(self.partial_points(&queue));

        while !queue.is_settled() {
            // Wedged-worker defense: any lease past its deadline is a
            // charged failure. (With in-process serial workers this only
            // fires on clock jumps, but the queue is also the state
            // machine for future out-of-process workers.)
            for id in queue.expired_leases(clock_ms) {
                let job = queue.job(id).expect("expired lease of defined job");
                let attempt = job.attempts + 1;
                let cause = "lease expired: worker presumed wedged".to_string();
                self.fail_attempt(&append, &mut queue, progress, id, attempt, clock_ms, cause)?;
            }

            let Some(id) = queue.next_ready(clock_ms) else {
                // Everything is gated by retry backoff: jump the clock.
                match queue.next_ready_at() {
                    Some(at) if at > clock_ms => {
                        clock_ms = at;
                        continue;
                    }
                    _ => break,
                }
            };
            let job = queue.job(id).expect("ready job is defined");
            let attempt = job.attempts + 1;

            let lease = JobEvent::Leased {
                id,
                attempt,
                deadline_ms: clock_ms + self.cfg.lease_ms,
            };
            append(&lease)?;
            queue.apply(&lease)?;
            if self.cfg.kill.before_job == Some(id) {
                outcome_end = SweepEnd::Killed;
                break;
            }
            let started = JobEvent::Started { id, attempt };
            append(&started)?;
            queue.apply(&started)?;
            attempts_launched += 1;

            // Build this attempt's campaign. `resume` is uncondition-
            // ally on: attempt 1 simply finds an empty directory.
            let point = self.grid.point(id).expect("job id within grid");
            let params = point.params(&self.cfg.base);
            progress(&SweepProgress::Started {
                job: id,
                attempt,
                a0: point.a0,
                n_over_ncr: point.n_over_ncr,
                vth: point.vth,
            });
            let mut ccfg = LpiCampaignConfig::new(
                self.cfg.steps,
                self.cfg.checkpoint_interval,
                self.job_dir(id),
            );
            ccfg.max_recoveries = self.cfg.campaign_max_recoveries;
            ccfg.sentinel = self.cfg.sentinel;
            ccfg.corruption = self.cfg.corruption(id, attempt);

            // Checkpoint hook = heartbeat + kill switch. Journal a
            // `Progress` record per certified checkpoint; ask the
            // campaign to halt when the seeded kill fires. Journal
            // errors inside the hook also halt (and surface below).
            let hook_error: Mutex<Option<JournalError>> = Mutex::new(None);
            let last_progress: Mutex<Option<(u64, u64)>> = Mutex::new(None);
            let base_clock = clock_ms;
            let lease_ms = self.cfg.lease_ms;
            let kill_after = self.cfg.kill.after_certifications;
            // Progressive-curve scaffolding for the hook: a snapshot of
            // the queue taken now (the hook cannot borrow `queue`), with
            // the running job's entry overlaid per certification. The
            // provisional reflectivity comes from the campaign's
            // streaming `progress.json` when its diagnostics pipeline is
            // on; `null` otherwise.
            let partial_base = self.partial_points(&queue);
            let progress_path = self.job_dir(id).join("progress.json");
            let hook = |step: u64| -> bool {
                let mut pts = partial_base.clone();
                if let Some(p) = pts.iter_mut().find(|p| p.point.job_id == id) {
                    p.attempts = attempt - 1;
                    p.status = PartialStatus::Running {
                        certified_step: step,
                        reflectivity: std::fs::read_to_string(&progress_path)
                            .ok()
                            .and_then(|s| vpic_diag::parse_progress(&s))
                            .map(|(_, r)| r),
                    };
                }
                self.write_partial(pts);
                let deadline_ms = base_clock + step + lease_ms;
                let ev = JobEvent::Progress {
                    id,
                    certified_step: step,
                    deadline_ms,
                };
                if let Err(e) = journal
                    .lock()
                    .expect("journal lock poisoned")
                    .append(&ev.encode())
                {
                    *hook_error.lock().expect("hook error lock") = Some(e);
                    return false;
                }
                *last_progress.lock().expect("progress lock") = Some((step, deadline_ms));
                let n = certifications.fetch_add(1, Ordering::SeqCst) + 1;
                match kill_after {
                    // Die at the k-th certification (1-based), with its
                    // Progress record already durable — a SIGKILL right
                    // after an fsync.
                    Some(k) => n < k,
                    None => true,
                }
            };

            let out = run_lpi_campaign_with(params, &ccfg, true, &hook)?;
            if let Some(e) = hook_error.into_inner().expect("hook error lock") {
                return Err(SweepError::Journal(e));
            }
            // Mirror the hook's journaled Progress records into the
            // live queue (the hook bypasses `queue.apply` because the
            // queue is mutably borrowed out here).
            if let Some((step, deadline_ms)) = last_progress.into_inner().expect("progress lock") {
                queue.apply(&JobEvent::Progress {
                    id,
                    certified_step: step,
                    deadline_ms,
                })?;
            }
            *steps_by_job.entry(id).or_insert(0) += out.steps_run;
            clock_ms += out.steps_run.max(1);

            match out.end {
                LpiCampaignEnd::Halted { .. } => {
                    // The kill plan fired mid-campaign: die without
                    // journaling anything else, like a real SIGKILL.
                    outcome_end = SweepEnd::Killed;
                    break;
                }
                LpiCampaignEnd::Completed => {
                    let result = PointResult {
                        fingerprint: point.fingerprint(&self.cfg.base, self.cfg.steps),
                        reflectivity: out.reflectivity,
                        energy: out.energy,
                        n_particles: out.n_particles,
                        state_fingerprint: out.state_fingerprint,
                    };
                    let ev = JobEvent::Done {
                        id,
                        result: result.encode(),
                    };
                    append(&ev)?;
                    queue.apply(&ev)?;
                    progress(&SweepProgress::Done {
                        job: id,
                        attempt,
                        reflectivity: out.reflectivity,
                        done: queue.stats().done,
                        total: self.grid.len(),
                    });
                }
                LpiCampaignEnd::Degraded { at_step, .. } => {
                    let cause = format!(
                        "campaign degraded at step {at_step} (attempt {attempt}); \
                         flight recorder in {}",
                        self.job_dir(id).display()
                    );
                    self.fail_attempt(&append, &mut queue, progress, id, attempt, clock_ms, cause)?;
                }
            }
            // Every settled transition refreshes the progressive curve,
            // so observers see `done`/`quarantined` points accrete as
            // the queue drains.
            self.write_partial(self.partial_points(&queue));
        }

        let stats = queue.stats();
        let settled = queue.is_settled() && outcome_end == SweepEnd::Completed;
        let (curve, curve_path) = if settled {
            let curve = self.aggregate(&queue)?;
            let path = self.cfg.sweep_dir.join(CURVE_NAME);
            write_json_atomic(&path, &curve.to_json())?;
            let steps_executed: u64 = steps_by_job.values().sum();
            let bench = SweepBench::from_stats(
                &stats,
                self.grid.len(),
                u64::from(replay.records > 0),
                steps_executed,
                wall_start.elapsed().as_secs_f64(),
                stats.done,
            );
            write_json_atomic(&self.cfg.sweep_dir.join(BENCH_NAME), &bench.to_json())?;
            (Some(curve), Some(path))
        } else {
            (None, None)
        };

        Ok(SweepOutcome {
            end: outcome_end,
            stats,
            curve,
            curve_path,
            replay,
            orphans_released,
            steps_by_job,
            attempts_launched,
        })
    }

    /// Exactly-once aggregation: fold the curve from `Done` records (and
    /// quarantine markers) in job-id order. Nothing else — not partial
    /// progress, not retries — reaches the physics artifact.
    fn aggregate(&self, queue: &JobQueue) -> Result<ReflectivityCurve, SweepError> {
        let mut points = Vec::with_capacity(self.grid.len());
        for point in self.grid.points() {
            let job = queue
                .job(point.job_id)
                .expect("settled queue covers the grid");
            let expected = point.fingerprint(&self.cfg.base, self.cfg.steps);
            let result = match (&job.state, &job.result) {
                (JobState::Done, Some(bytes)) => {
                    let r = PointResult::decode(bytes).map_err(|reason| {
                        SweepError::MalformedResult {
                            job: job.id,
                            reason,
                        }
                    })?;
                    if r.fingerprint != expected {
                        return Err(SweepError::MalformedResult {
                            job: job.id,
                            reason: format!(
                                "result fingerprint {:#018x} != spec {expected:#018x}",
                                r.fingerprint
                            ),
                        });
                    }
                    Some(r)
                }
                _ => None,
            };
            points.push(CurvePoint {
                point,
                attempts: job.attempts,
                result,
                quarantined: if matches!(job.state, JobState::Quarantined) {
                    Some(job.last_cause.clone().unwrap_or_default())
                } else {
                    None
                },
            });
        }
        Ok(ReflectivityCurve {
            steps: self.cfg.steps,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn small_base() -> LpiParams {
        LpiParams {
            flat: 4.0,
            ppc: 4,
            a0: 0.01,
            sponge_cells: 12,
            ..Default::default()
        }
    }

    fn test_cfg(dir: &Path) -> SweepConfig {
        let mut cfg = SweepConfig::new(small_base(), 40, 10, dir);
        cfg.sentinel.health_interval = 10;
        cfg.sentinel.max_energy_growth = 100.0;
        cfg
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vpic_sweep_{}_{name}", std::process::id()))
    }

    #[test]
    fn single_point_sweep_completes_and_writes_artifacts() {
        let dir = tmp("single");
        let _ = std::fs::remove_dir_all(&dir);
        let grid = SweepGrid::single(&small_base());
        let runner = SweepRunner::new(grid, test_cfg(&dir));
        let out = runner.run().unwrap();
        assert_eq!(out.end, SweepEnd::Completed);
        assert_eq!(out.stats.done, 1);
        assert_eq!(out.attempts_launched, 1);
        let curve = out.curve.unwrap();
        assert_eq!(curve.done(), 1);
        let r = curve.points[0].result.unwrap();
        assert!(r.n_particles > 0);
        let json = std::fs::read_to_string(out.curve_path.unwrap()).unwrap();
        assert_eq!(json, curve.to_json(), "artifact must match aggregation");
        let bench = std::fs::read_to_string(dir.join(BENCH_NAME)).unwrap();
        assert!(bench.contains("\"schema\": \"vpic-bench/sweep/v1\""));
        assert!(bench.contains("\"done\": 1"));
        // 40 steps of physics ran, all in this incarnation.
        assert_eq!(out.steps_by_job.get(&0), Some(&40));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_before_start_releases_lease_without_charging() {
        let dir = tmp("killlease");
        let _ = std::fs::remove_dir_all(&dir);
        let grid = SweepGrid::single(&small_base());

        // Incarnation 1 dies right after journaling the lease: zero
        // physics runs.
        let mut cfg = test_cfg(&dir);
        cfg.kill.before_job = Some(0);
        let out = SweepRunner::new(grid.clone(), cfg).run().unwrap();
        assert_eq!(out.end, SweepEnd::Killed);
        assert_eq!(out.steps_by_job.values().sum::<u64>(), 0);
        assert!(out.curve.is_none(), "killed sweep must not aggregate");
        assert!(!dir.join(CURVE_NAME).exists());

        // Incarnation 2 replays the WAL, releases the orphaned lease
        // (no attempt charged) and finishes the sweep.
        let out = SweepRunner::new(grid, test_cfg(&dir)).run().unwrap();
        assert_eq!(out.end, SweepEnd::Completed);
        assert_eq!(out.orphans_released, vec![0]);
        assert!(out.replay.records > 0, "WAL must have been replayed");
        let curve = out.curve.unwrap();
        assert_eq!(curve.done(), 1);
        assert_eq!(curve.points[0].attempts, 0, "orphan release is free");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_curve_streams_while_sweep_runs_and_after_it_settles() {
        let dir = tmp("partial");
        let _ = std::fs::remove_dir_all(&dir);
        let grid = SweepGrid::single(&small_base());

        // Incarnation 1 dies at its first certification: the progressive
        // artifact on disk must show the job mid-flight.
        let mut cfg = test_cfg(&dir);
        cfg.kill.after_certifications = Some(1);
        let out = SweepRunner::new(grid.clone(), cfg).run().unwrap();
        assert_eq!(out.end, SweepEnd::Killed);
        let partial = std::fs::read_to_string(dir.join(PARTIAL_NAME)).unwrap();
        assert!(
            partial.contains("\"schema\": \"vpic-lpi/reflectivity-curve-partial/v1\""),
            "{partial}"
        );
        assert!(partial.contains("\"status\": \"running\""), "{partial}");
        assert!(partial.contains("\"certified_step\": 0"), "{partial}");
        // diag = off in the base deck: no streaming progress.json, so
        // the provisional reflectivity is null, not a stale number.
        assert!(partial.contains("\"reflectivity\": null"), "{partial}");

        // Incarnation 2 finishes the sweep; the progressive artifact
        // converges to all-done.
        let out = SweepRunner::new(grid, test_cfg(&dir)).run().unwrap();
        assert_eq!(out.end, SweepEnd::Completed);
        let partial = std::fs::read_to_string(dir.join(PARTIAL_NAME)).unwrap();
        assert!(partial.contains("\"points_done\": 1"), "{partial}");
        assert!(partial.contains("\"status\": \"done\""), "{partial}");
        assert!(partial.contains("\"reflectivity_bits\""), "{partial}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_grid_is_a_typed_error() {
        let grid = SweepGrid {
            a0: vec![],
            n_over_ncr: vec![0.1],
            vth: vec![0.07],
        };
        let dir = tmp("empty");
        let err = SweepRunner::new(grid, test_cfg(&dir)).run().unwrap_err();
        assert!(matches!(err, SweepError::EmptyGrid));
    }

    #[test]
    fn foreign_journal_is_rejected_by_fingerprint() {
        let dir = tmp("foreign");
        let _ = std::fs::remove_dir_all(&dir);
        // Run a sweep at one grid point to settle a WAL...
        let grid = SweepGrid::single(&small_base());
        SweepRunner::new(grid, test_cfg(&dir)).run().unwrap();
        // ...then reopen it with a different spec (more steps changes
        // every fingerprint).
        let mut cfg = test_cfg(&dir);
        cfg.steps = 80;
        let err = SweepRunner::new(SweepGrid::single(&small_base()), cfg)
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                SweepError::Queue(QueueError::FingerprintMismatch { .. })
            ),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
