//! Sweep grid: the `(a0, n/ncr, vth)` cartesian product and the deck
//! templating that turns a grid point into a concrete [`LpiParams`].
//!
//! Job ids are the linearized grid index with `a0` outermost and `vth`
//! innermost, so the id ↔ point mapping is stable for the life of a
//! sweep and a journal replayed against a *different* grid is caught by
//! the per-job spec fingerprint, not silently misapplied.

use crate::setup::LpiParams;

/// SplitMix64 finalizer (the repo's standard seed mixer).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Axes of the reflectivity parameter study.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepGrid {
    /// Laser strengths `a0` (outermost axis).
    pub a0: Vec<f64>,
    /// Densities over critical.
    pub n_over_ncr: Vec<f64>,
    /// Electron thermal velocities (innermost axis).
    pub vth: Vec<f64>,
}

impl SweepGrid {
    /// Grid with a single point taken from `base` (degenerate sweep).
    pub fn single(base: &LpiParams) -> SweepGrid {
        SweepGrid {
            a0: vec![base.a0],
            n_over_ncr: vec![base.n_over_ncr],
            vth: vec![base.vth],
        }
    }

    /// Number of grid points (jobs).
    pub fn len(&self) -> usize {
        self.a0.len() * self.n_over_ncr.len() * self.vth.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point for job `id`, or `None` past the end of the grid.
    pub fn point(&self, id: u64) -> Option<SweepPoint> {
        let (nn, nv) = (self.n_over_ncr.len() as u64, self.vth.len() as u64);
        if self.is_empty() || id >= self.len() as u64 {
            return None;
        }
        let ia = id / (nn * nv);
        let inn = (id / nv) % nn;
        let iv = id % nv;
        Some(SweepPoint {
            job_id: id,
            a0: self.a0[ia as usize],
            n_over_ncr: self.n_over_ncr[inn as usize],
            vth: self.vth[iv as usize],
        })
    }

    /// All points in job-id order.
    pub fn points(&self) -> impl Iterator<Item = SweepPoint> + '_ {
        (0..self.len() as u64).filter_map(|id| self.point(id))
    }
}

/// One grid point: a job in the sweep queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Stable job id (linearized grid index).
    pub job_id: u64,
    pub a0: f64,
    pub n_over_ncr: f64,
    pub vth: f64,
}

impl SweepPoint {
    /// Template the base deck at this grid point. Everything except the
    /// swept axes (and the physics-derived RNG decorrelation below) is
    /// inherited from `base`, so points differ only where the study
    /// says they do.
    pub fn params(&self, base: &LpiParams) -> LpiParams {
        let mut p = *base;
        p.a0 = self.a0;
        p.n_over_ncr = self.n_over_ncr;
        p.vth = self.vth;
        // Decorrelate the particle-noise realizations between points:
        // the same base seed at every point would correlate the noise
        // floor across the curve.
        p.seed = splitmix64(base.seed ^ self.job_id.rotate_left(32));
        p
    }

    /// Spec fingerprint: ties a journaled job to the exact physics it
    /// runs (point values, step count and the templated seed), so a
    /// stale or foreign journal is rejected on replay.
    pub fn fingerprint(&self, base: &LpiParams, steps: u64) -> u64 {
        let p = self.params(base);
        let mut h = splitmix64(0x5353_5750_u64 ^ self.job_id); // "SSWP"
        for bits in [
            p.a0.to_bits(),
            p.n_over_ncr.to_bits(),
            p.vth.to_bits(),
            p.seed,
            steps,
        ] {
            h = splitmix64(h ^ bits);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid {
            a0: vec![0.01, 0.02],
            n_over_ncr: vec![0.08, 0.10, 0.12],
            vth: vec![0.07],
        }
    }

    #[test]
    fn ids_cover_the_grid_in_order() {
        let g = grid();
        assert_eq!(g.len(), 6);
        let pts: Vec<_> = g.points().collect();
        assert_eq!(pts.len(), 6);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.job_id, i as u64);
            assert_eq!(g.point(p.job_id).unwrap(), *p);
        }
        // a0 outermost, n_over_ncr middle, vth innermost.
        assert_eq!((pts[0].a0, pts[0].n_over_ncr), (0.01, 0.08));
        assert_eq!((pts[2].a0, pts[2].n_over_ncr), (0.01, 0.12));
        assert_eq!((pts[3].a0, pts[3].n_over_ncr), (0.02, 0.08));
        assert!(g.point(6).is_none());
    }

    #[test]
    fn templating_changes_only_swept_axes_and_seed() {
        let base = LpiParams::default();
        let g = grid();
        let p = g.point(4).unwrap().params(&base);
        assert_eq!(p.a0, 0.02);
        assert_eq!(p.n_over_ncr, 0.10);
        assert_eq!(p.vth, 0.07);
        assert_eq!(p.ppc, base.ppc);
        assert_eq!(p.flat, base.flat);
        assert_ne!(p.seed, base.seed);
        // Deterministic: same point, same params.
        assert_eq!(p.seed, g.point(4).unwrap().params(&base).seed);
        // Distinct points get distinct seeds.
        assert_ne!(p.seed, g.point(3).unwrap().params(&base).seed);
    }

    #[test]
    fn fingerprints_separate_specs() {
        let base = LpiParams::default();
        let g = grid();
        let a = g.point(1).unwrap();
        assert_eq!(a.fingerprint(&base, 100), a.fingerprint(&base, 100));
        assert_ne!(a.fingerprint(&base, 100), a.fingerprint(&base, 200));
        assert_ne!(
            a.fingerprint(&base, 100),
            g.point(2).unwrap().fingerprint(&base, 100)
        );
        let mut reseeded = base;
        reseeded.seed = base.seed + 1;
        assert_ne!(a.fingerprint(&base, 100), a.fingerprint(&reseeded, 100));
    }
}
