//! Reduced three-wave coupled-mode model of SRS backscatter — the
//! fluid-level baseline the kinetic PIC results are compared against.
//! It reproduces the threshold and the steep rise of reflectivity with
//! intensity, but knows nothing about trapping (the physics the paper's
//! trillion-particle runs resolve).

/// Three-wave interaction with pump depletion/replenishment and wave
/// damping. Amplitudes are normalized so the small-signal plasma-wave
/// growth rate is `γ0` when the pump is undepleted.
///
/// In a driven slab the pump is continuously re-supplied by the laser at
/// the transit rate `ν_p ≈ v_g0/L`; without it a 0D model rings once and
/// dies, which is not what a steady illumination does.
#[derive(Clone, Copy, Debug)]
pub struct ThreeWaveModel {
    /// Small-signal growth rate at the initial pump amplitude.
    pub gamma0: f64,
    /// Scattered-light damping/escape rate (transit loss `v_gs/L`).
    pub nu_s: f64,
    /// Plasma-wave (Landau) damping rate.
    pub nu_e: f64,
    /// Pump replenishment rate toward its incident amplitude.
    pub nu_p: f64,
    /// Seed level as a fraction of the pump (thermal noise stand-in).
    pub seed: f64,
}

/// Result of integrating the model.
#[derive(Clone, Copy, Debug)]
pub struct ThreeWaveResult {
    /// Time-averaged reflectivity `⟨a_s²⟩/a_p(0)²` over the final third.
    pub reflectivity: f64,
    /// Peak instantaneous reflectivity.
    pub peak_reflectivity: f64,
    /// Final pump fraction `a_p(T)²/a_p(0)²`.
    pub pump_out: f64,
}

impl ThreeWaveModel {
    /// Integrate for `t_end` with an RK4 step `dt`.
    pub fn run(&self, t_end: f64, dt: f64) -> ThreeWaveResult {
        assert!(dt > 0.0 && t_end > dt);
        // State: (pump, scattered, plasma wave) real amplitudes; coupling
        // normalized so d(as)/dt = γ0·(ap/ap0)·ae etc.
        let mut y = [1.0f64, self.seed, self.seed];
        let g = self.gamma0;
        let deriv = |y: [f64; 3]| -> [f64; 3] {
            [
                -g * y[1] * y[2] + self.nu_p * (1.0 - y[0]),
                g * y[0] * y[2] - self.nu_s * y[1],
                g * y[0] * y[1] - self.nu_e * y[2],
            ]
        };
        let steps = (t_end / dt) as usize;
        let mut refl_acc = 0.0f64;
        let mut refl_n = 0usize;
        let mut peak = 0.0f64;
        for s in 0..steps {
            let k1 = deriv(y);
            let y2 = add(y, k1, 0.5 * dt);
            let k2 = deriv(y2);
            let y3 = add(y, k2, 0.5 * dt);
            let k3 = deriv(y3);
            let y4 = add(y, k3, dt);
            let k4 = deriv(y4);
            for i in 0..3 {
                y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                // Amplitudes stay bounded by the initial pump action.
                y[i] = y[i].clamp(-1.0, 1.0);
            }
            let r = y[1] * y[1];
            peak = peak.max(r);
            if s >= 2 * steps / 3 {
                refl_acc += r;
                refl_n += 1;
            }
        }
        ThreeWaveResult {
            reflectivity: refl_acc / refl_n.max(1) as f64,
            peak_reflectivity: peak,
            pump_out: y[0] * y[0],
        }
    }
}

fn add(y: [f64; 3], k: [f64; 3], h: f64) -> [f64; 3] {
    [y[0] + h * k[0], y[1] + h * k[1], y[2] + h * k[2]]
}

/// Tang's steady-state backscatter reflectivity: with intensity gain
/// exponent `G` and noise seed `ε` (as a reflectivity), `R` solves
///
/// ```text
/// R = ε·(1−R)·exp[G·(1−R)]
/// ```
///
/// — the standard fluid (pump-depletion-saturated) baseline used across
/// the LPI literature for reflectivity-vs-intensity curves. Monotone in
/// `G`, `→ ε` for `G → 0`, saturating toward 1 at large gain.
pub fn tang_reflectivity(gain: f64, seed: f64) -> f64 {
    assert!((0.0..1.0).contains(&seed) && gain >= 0.0);
    let f = |r: f64| seed * (1.0 - r) * (gain * (1.0 - r)).exp() - r;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // f(0) = ε·e^G > 0, f(1) = −1 < 0.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Fluid baseline curve for experiment E5: `(gain, R_tang)` per point.
pub fn reflectivity_curve(gains: &[f64], seed: f64) -> Vec<(f64, f64)> {
    gains
        .iter()
        .map(|&g| (g, tang_reflectivity(g, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_stays_at_seed_level() {
        // γ0² < νs·νe → no instability.
        let m = ThreeWaveModel {
            gamma0: 0.01,
            nu_s: 0.05,
            nu_e: 0.05,
            nu_p: 0.02,
            seed: 1e-4,
        };
        let r = m.run(2000.0, 0.5);
        assert!(r.reflectivity < 1e-6, "r = {:?}", r);
        assert!(r.pump_out > 0.999);
    }

    #[test]
    fn above_threshold_reaches_predicted_steady_state() {
        // Steady state: a_p = √(νs·νe)/γ0, R = νp(1−a_p)·νe/(γ0²·a_p).
        let m = ThreeWaveModel {
            gamma0: 0.2,
            nu_s: 0.05,
            nu_e: 0.05,
            nu_p: 0.02,
            seed: 1e-4,
        };
        let r = m.run(3000.0, 0.05);
        let ap = (m.nu_s * m.nu_e).sqrt() / m.gamma0;
        let want = m.nu_p * (1.0 - ap) * m.nu_e / (m.gamma0 * m.gamma0 * ap);
        assert!(
            (r.reflectivity - want).abs() / want < 0.3,
            "r = {:?}, want {want}",
            r
        );
        assert!(r.pump_out < 0.9);
        assert!(r.peak_reflectivity >= r.reflectivity);
    }

    #[test]
    fn tang_limits_and_monotonicity() {
        // G → 0 recovers the seed.
        assert!((tang_reflectivity(0.0, 1e-6) - 1e-6).abs() < 1e-9);
        // Exactly solves the implicit relation.
        let g = 12.0;
        let r = tang_reflectivity(g, 1e-6);
        let rhs = 1e-6 * (1.0 - r) * (g * (1.0 - r)).exp();
        assert!((r - rhs).abs() < 1e-9);
        // Monotone, steep rise through the gain window, saturates < 1.
        let curve = reflectivity_curve(&[0.0, 5.0, 10.0, 15.0, 25.0, 60.0], 1e-6);
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1, "non-monotone: {curve:?}");
        }
        assert!(curve[5].1 > 0.5 && curve[5].1 < 1.0, "{curve:?}");
        assert!(curve[3].1 > 1e3 * curve[0].1, "{curve:?}");
    }
}
