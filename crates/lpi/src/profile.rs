//! Plasma density profiles along x (vacuum gap → ramp → flat top → ramp →
//! vacuum gap), the standard quasi-1D LPI target layout.

/// Piecewise-linear density profile along x, normalized to 1 at flat top.
#[derive(Clone, Copy, Debug)]
pub struct SlabProfile {
    /// Start of the up-ramp.
    pub x_enter: f32,
    /// Up-ramp length (0 = hard edge).
    pub ramp_up: f32,
    /// Flat-top length.
    pub flat: f32,
    /// Down-ramp length (0 = hard edge).
    pub ramp_down: f32,
}

impl SlabProfile {
    /// Density in `[0,1]` at position `x`.
    pub fn density(&self, x: f32) -> f32 {
        let x0 = self.x_enter;
        let x1 = x0 + self.ramp_up;
        let x2 = x1 + self.flat;
        let x3 = x2 + self.ramp_down;
        if x < x0 || x > x3 {
            0.0
        } else if x < x1 {
            (x - x0) / self.ramp_up
        } else if x <= x2 {
            1.0
        } else {
            (x3 - x) / self.ramp_down
        }
    }

    /// End of the plasma (start of the exit vacuum region).
    pub fn x_exit(&self) -> f32 {
        self.x_enter + self.ramp_up + self.flat + self.ramp_down
    }

    /// Center of the flat top.
    pub fn x_center(&self) -> f32 {
        self.x_enter + self.ramp_up + 0.5 * self.flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_shape() {
        let p = SlabProfile {
            x_enter: 10.0,
            ramp_up: 5.0,
            flat: 20.0,
            ramp_down: 5.0,
        };
        assert_eq!(p.density(0.0), 0.0);
        assert_eq!(p.density(9.99), 0.0);
        assert!((p.density(12.5) - 0.5).abs() < 1e-6);
        assert_eq!(p.density(15.0), 1.0);
        assert_eq!(p.density(30.0), 1.0);
        assert!((p.density(37.5) - 0.5).abs() < 1e-6);
        assert_eq!(p.density(40.1), 0.0);
        assert_eq!(p.x_exit(), 40.0);
        assert_eq!(p.x_center(), 25.0);
    }

    #[test]
    fn hard_edges() {
        let p = SlabProfile {
            x_enter: 5.0,
            ramp_up: 0.0,
            flat: 10.0,
            ramp_down: 0.0,
        };
        assert_eq!(p.density(4.9), 0.0);
        assert_eq!(p.density(5.1), 1.0);
        assert_eq!(p.density(14.9), 1.0);
        assert_eq!(p.density(15.1), 0.0);
    }
}
