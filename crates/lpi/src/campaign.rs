//! Serial fault-tolerant campaign runtime for LPI runs: drives an
//! [`LpiRun`] under the numerical-integrity sentinel with v2 restart
//! dumps and the same log → Marder-burst → rollback → degrade escalation
//! ladder as the distributed campaign runtime in `vpic-parallel`. The run
//! executes on a one-rank nanompi world so seeded [`FaultPlan`] kills
//! surface as the same typed [`CommError`] faults the multi-rank runtime
//! handles, and seeded [`CorruptionPlan`] events model transient memory
//! upsets the sentinel must catch.
//!
//! Rollback restores the full observable state — fields, particles,
//! reflectivity probe, backscatter series — so a recovered campaign
//! finishes **bit-identically** with a fault-free run of the same deck
//! (corruption events are one-shot: the replay of a rolled-back step is
//! clean). When the recovery budget is exhausted the campaign degrades
//! gracefully: a partial v2 dump plus the flight recorder's last N health
//! samples as JSON.
//!
//! Gauss-law monitoring and Marder E-cleaning are forced off when the run
//! uses the immobile neutralizing ion background (the default): `rho` then
//! holds electron charge only, so `∇·E − ρ/ε0` is biased by the missing
//! ion term and "cleaning" it would actively corrupt the fields.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use nanompi::{run_with_faults, Comm, CommError, FaultPlan};
use vpic_core::checkpoint::{
    load_with_layout, read_section, save, write_section, CheckpointError, PayloadReader,
    PayloadWriter,
};
use vpic_core::crc32::fingerprint32;
use vpic_core::sentinel::{
    validate_cfl, CorruptionPlan, HealEvent, HealthVerdict, Sentinel, SentinelConfig,
};
use vpic_diag::{DiagEngine, DiagStats, ReflectivityProbe, TimeSeries};

use crate::setup::{LpiParams, LpiRun};

/// Campaign runtime knobs for a serial LPI run.
#[derive(Clone, Debug)]
pub struct LpiCampaignConfig {
    /// Total steps to drive.
    pub steps: u64,
    /// Checkpoint cadence in steps (0 disables checkpoints — any fault
    /// then degrades immediately).
    pub checkpoint_interval: u64,
    /// Where dumps, partial dumps and the flight recorder land.
    pub checkpoint_dir: PathBuf,
    /// Checkpoint generations kept (older ones are dropped).
    pub keep_checkpoints: usize,
    /// Recovery budget before degrading.
    pub max_recoveries: u32,
    /// Sentinel thresholds and cadence.
    pub sentinel: SentinelConfig,
    /// Seeded transient field corruption, if any.
    pub corruption: Option<CorruptionPlan>,
    /// Seeded process-fault injection (kills), if any.
    pub fault_plan: Option<FaultPlan>,
}

impl LpiCampaignConfig {
    pub fn new(steps: u64, checkpoint_interval: u64, dir: impl Into<PathBuf>) -> Self {
        LpiCampaignConfig {
            steps,
            checkpoint_interval,
            checkpoint_dir: dir.into(),
            keep_checkpoints: 2,
            max_recoveries: 3,
            sentinel: SentinelConfig::enabled(),
            corruption: None,
            fault_plan: None,
        }
    }
}

/// How the campaign ended.
#[derive(Clone, Debug)]
pub enum LpiCampaignEnd {
    /// Reached `steps`.
    Completed,
    /// Recovery budget exhausted: best-effort partial dump + flight
    /// recorder JSON written.
    Degraded {
        at_step: u64,
        partial_dump: PathBuf,
        flight_recorder: PathBuf,
    },
    /// The checkpoint hook asked the campaign to stop after certifying
    /// the checkpoint at `at_step` (state on disk is resumable from
    /// exactly that step).
    Halted { at_step: u64 },
}

/// One recovery episode.
#[derive(Clone, Debug)]
pub struct LpiRecovery {
    pub at_step: u64,
    pub cause: String,
    pub restored_step: u64,
}

/// Everything a finished (or degraded) campaign reports.
#[derive(Clone, Debug)]
pub struct LpiCampaignOutcome {
    pub end: LpiCampaignEnd,
    /// Steps executed by **this invocation** (a resumed campaign counts
    /// only the steps it drove, not the restored prefix).
    pub steps_run: u64,
    /// Step the campaign was restored from when it resumed off disk.
    pub resumed_from: Option<u64>,
    pub recoveries: Vec<LpiRecovery>,
    pub heals: Vec<HealEvent>,
    /// Measured reflectivity at the end state.
    pub reflectivity: f64,
    /// Total energy at the end state.
    pub energy: f64,
    pub n_particles: u64,
    /// Avalanche fingerprint of the end state's v2 dump bytes: a
    /// content-sensitive digest for bit-identity checks across
    /// faulted/unfaulted runs. Deliberately NOT a plain CRC-32 — the
    /// dump embeds per-section CRCs, whose residue property makes a
    /// whole-file CRC depend on section lengths only (see
    /// `vpic_core::crc32::fingerprint32`).
    pub state_fingerprint: u32,
    /// Diagnostics-pipeline counters (published/consumed/dropped snapshots,
    /// max queue depth, publisher stall time). All-zero when `diag = off`.
    pub diag: DiagStats,
    /// The diagnostics engine drained from the pipeline at shutdown, when
    /// the campaign ran with `diag = sync|async`. Carries the backscatter
    /// spectrum/spectrogram state so callers can write final artifacts.
    pub diag_engine: Option<Box<DiagEngine>>,
}

/// Campaign failure (distinct from a degraded-but-finished run).
#[derive(Debug)]
pub enum LpiCampaignError {
    /// The deck violates a setup invariant (CFL).
    Config(HealthVerdict),
    Io(std::io::Error),
    Checkpoint(CheckpointError),
    Comm(CommError),
    /// The campaign thread panicked.
    Panic(String),
    /// The campaign world returned no rank result (a nanompi invariant
    /// violation — one rank in, one result out).
    NoRankResult,
}

impl std::fmt::Display for LpiCampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpiCampaignError::Config(v) => write!(f, "invalid setup: {v}"),
            LpiCampaignError::Io(e) => write!(f, "io: {e}"),
            LpiCampaignError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            LpiCampaignError::Comm(e) => write!(f, "comm: {e}"),
            LpiCampaignError::Panic(m) => write!(f, "campaign thread panicked: {m}"),
            LpiCampaignError::NoRankResult => {
                write!(f, "campaign world returned no rank result")
            }
        }
    }
}

impl std::error::Error for LpiCampaignError {}

impl From<std::io::Error> for LpiCampaignError {
    fn from(e: std::io::Error) -> Self {
        LpiCampaignError::Io(e)
    }
}

impl From<CheckpointError> for LpiCampaignError {
    fn from(e: CheckpointError) -> Self {
        LpiCampaignError::Checkpoint(e)
    }
}

/// The diagnostic state a v2 dump does not carry, snapshotted alongside
/// each checkpoint generation so rollback restores the full observable
/// state (in memory: the process survives serial faults).
#[derive(Clone)]
struct SidecarState {
    probe: ReflectivityProbe,
    series: TimeSeries,
    lost: u64,
}

struct Generation {
    step: u64,
    bytes: Vec<u8>,
    diag: SidecarState,
}

/// Build the run described by `params` and drive it to `cfg.steps` under
/// the sentinel with checkpoint/rollback recovery. The run is constructed
/// inside the campaign world so seeded faults cover setup too.
pub fn run_lpi_campaign(
    params: LpiParams,
    cfg: &LpiCampaignConfig,
) -> Result<LpiCampaignOutcome, LpiCampaignError> {
    run_lpi_campaign_with(params, cfg, false, &|_| true)
}

/// [`run_lpi_campaign`] with process-crash recovery hooks for external
/// orchestrators (the sweep service):
///
/// * `resume` — before stepping, restore the newest loadable
///   checkpoint + diagnostic sidecar pair from `cfg.checkpoint_dir`.
///   Restored state is certified (health-checked before it was written),
///   so a killed-and-restarted campaign replays only steps past its last
///   checkpoint and finishes **bit-identically** with an uninterrupted
///   run. With nothing usable on disk the campaign starts from step 0.
/// * `on_checkpoint(step)` — called after each checkpoint generation is
///   durably on disk (sidecar first, dump rename last). Returning `false`
///   stops the campaign with [`LpiCampaignEnd::Halted`]; orchestrators
///   use this to certify progress and to model mid-campaign kills.
pub fn run_lpi_campaign_with(
    params: LpiParams,
    cfg: &LpiCampaignConfig,
    resume: bool,
    on_checkpoint: &(dyn Fn(u64) -> bool + Sync),
) -> Result<LpiCampaignOutcome, LpiCampaignError> {
    let (mut results, _traffic) = run_with_faults(1, cfg.fault_plan.clone(), |comm| {
        let run = LpiRun::new(params);
        drive(run, comm, cfg, resume, on_checkpoint)
    });
    match results.pop() {
        Some(Ok(r)) => r,
        Some(Err(p)) => Err(LpiCampaignError::Panic(p.message)),
        None => Err(LpiCampaignError::NoRankResult),
    }
}

fn snapshot(run: &LpiRun) -> SidecarState {
    SidecarState {
        probe: run.probe.clone(),
        series: run.backscatter_series.clone(),
        lost: run.sim.lost_particles,
    }
}

fn dump_bytes(run: &LpiRun) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = Vec::new();
    save(&run.sim, &mut buf)?;
    Ok(buf)
}

fn checkpoint_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("ckpt_{step:08}.vpic"))
}

fn sidecar_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("ckpt_{step:08}.diag"))
}

/// Magic for the diagnostic sidecar written next to each v2 dump: the
/// observable state a dump does not carry (reflectivity probe, backscatter
/// series, lost-particle count), CRC-framed like every other artifact.
const DIAG_MAGIC: &[u8; 8] = b"VPICDIA1";

fn encode_sidecar(step: u64, diag: &SidecarState) -> Vec<u8> {
    let (incident, reflected, samples) = diag.probe.raw_state();
    let mut p = PayloadWriter::new();
    p.u64(step);
    p.u64(diag.probe.plane as u64);
    p.f64(incident);
    p.f64(reflected);
    p.u64(samples);
    p.u64(diag.lost);
    p.f64(diag.series.dt);
    // Windowed-retention state: the cap travels with the dump so a resumed
    // campaign keeps the same retention policy, and `discarded` keeps
    // `total_pushed()` (and the progress artifact's sample accounting)
    // exact across restore.
    p.u64(diag.series.cap as u64);
    p.u64(diag.series.discarded);
    p.u64(diag.series.name.len() as u64);
    p.bytes(diag.series.name.as_bytes());
    p.u64(diag.series.samples.len() as u64);
    for &v in &diag.series.samples {
        p.f64(v);
    }
    let mut out = Vec::new();
    out.extend_from_slice(DIAG_MAGIC);
    write_section(&mut out, &p.finish()).expect("vec write is infallible");
    out
}

fn decode_sidecar(bytes: &[u8]) -> Result<(u64, SidecarState), CheckpointError> {
    let mut r = bytes;
    let mut magic = [0u8; 8];
    std::io::Read::read_exact(&mut r, &mut magic).map_err(CheckpointError::Io)?;
    if &magic != DIAG_MAGIC {
        return Err(CheckpointError::Malformed(format!(
            "bad diag sidecar magic {magic:02x?}"
        )));
    }
    let payload = read_section(&mut r, "diag")?;
    let mut p = PayloadReader::new(&payload, "diag");
    let step = p.u64()?;
    let plane = p.u64()? as usize;
    let incident = p.f64()?;
    let reflected = p.f64()?;
    let samples = p.u64()?;
    let lost = p.u64()?;
    let dt = p.f64()?;
    let cap = p.u64()? as usize;
    let discarded = p.u64()?;
    let name_len = p.u64()? as usize;
    let name = String::from_utf8(p.bytes(name_len)?.to_vec())
        .map_err(|_| CheckpointError::Malformed("diag series name not UTF-8".into()))?;
    let n = p.u64()? as usize;
    let mut series = TimeSeries::new(&name, dt).with_cap(cap);
    series.discarded = discarded;
    series.samples.reserve(n);
    for _ in 0..n {
        series.samples.push(p.f64()?);
    }
    p.done()?;
    Ok((
        step,
        SidecarState {
            probe: ReflectivityProbe::from_raw(plane, incident, reflected, samples),
            series,
            lost,
        },
    ))
}

/// Crash-safe file write: temp file in the same directory, fsync, rename.
/// A reader never observes a half-written checkpoint or sidecar.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Scan `cfg.checkpoint_dir` for the newest `(dump, sidecar)` pair whose
/// steps agree and whose frames verify; restore it into `run`. Unusable
/// generations are logged and skipped, oldest-last. Returns the restored
/// step, or `None` when nothing on disk is usable (fresh start).
fn restore_newest(
    run: &mut LpiRun,
    sponge: Option<vpic_core::sponge::Sponge>,
    cfg: &LpiCampaignConfig,
) -> Option<u64> {
    let mut steps: Vec<u64> = std::fs::read_dir(&cfg.checkpoint_dir)
        .ok()?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let digits = name.strip_prefix("ckpt_")?.strip_suffix(".vpic")?;
            digits.parse::<u64>().ok()
        })
        .collect();
    steps.sort_unstable();
    for step in steps.into_iter().rev() {
        let restored = (|| -> Result<u64, String> {
            let bytes = std::fs::read(checkpoint_path(&cfg.checkpoint_dir, step))
                .map_err(|e| format!("dump unreadable: {e}"))?;
            let raw = std::fs::read(sidecar_path(&cfg.checkpoint_dir, step))
                .map_err(|e| format!("sidecar unreadable: {e}"))?;
            let (side_step, diag) =
                decode_sidecar(&raw).map_err(|e| format!("sidecar corrupt: {e}"))?;
            if side_step != step {
                return Err(format!("sidecar step {side_step} != dump step {step}"));
            }
            let mut sim = load_with_layout(
                &mut bytes.as_slice(),
                run.params.pipelines,
                run.params.layout,
            )
            .map_err(|e| format!("dump corrupt: {e}"))?;
            sim.set_kernel(run.params.kernel);
            sim.sponge = sponge;
            sim.lost_particles = diag.lost;
            run.sim = sim;
            run.probe = diag.probe;
            run.backscatter_series = diag.series;
            Ok(step)
        })();
        match restored {
            Ok(step) => {
                log_line(cfg, &format!("resume restored_step={step}"));
                return Some(step);
            }
            Err(why) => log_line(cfg, &format!("resume candidate step={step} skipped: {why}")),
        }
    }
    None
}

fn drive(
    mut run: LpiRun,
    comm: &mut Comm,
    cfg: &LpiCampaignConfig,
    resume: bool,
    on_checkpoint: &(dyn Fn(u64) -> bool + Sync),
) -> Result<LpiCampaignOutcome, LpiCampaignError> {
    std::fs::create_dir_all(&cfg.checkpoint_dir)?;
    if let Err(v) = validate_cfl(&run.sim.grid) {
        return Err(LpiCampaignError::Config(v));
    }
    let sponge = run.sim.sponge;
    // Progress artifacts land next to the checkpoints they describe.
    run.diag_set_out_dir(cfg.checkpoint_dir.clone());
    let resumed_from = if resume {
        let restored = restore_newest(&mut run, sponge, cfg);
        if restored.is_some() {
            // The engine (sync or async) must restart from the restored
            // probe/series, not keep state from before the resume.
            run.diag_reset();
        }
        restored
    } else {
        None
    };
    let mut scfg = cfg.sentinel;
    if run.ions.is_none() {
        // Implicit neutralizing background: rho is electrons-only, so the
        // Gauss residual is physically meaningless here (see module docs).
        scfg.max_div_e_rms = 0.0;
    }
    let mut sentinel = Sentinel::new(scfg);
    sentinel.arm(&run.sim);
    let mut corruption = cfg.corruption.clone();
    let mut recoveries: Vec<LpiRecovery> = Vec::new();
    let mut generations: VecDeque<Generation> = VecDeque::new();
    let mut steps_run: u64 = 0;

    loop {
        let step = run.sim.step_count;
        if step >= cfg.steps {
            return finish(
                run,
                sentinel,
                recoveries,
                steps_run,
                resumed_from,
                LpiCampaignEnd::Completed,
            );
        }
        let fault: Option<String> = (|| {
            if let Err(e) = comm.tick(step) {
                return Some(e.to_string());
            }
            if let Some(plan) = corruption.as_mut() {
                let hits = plan.apply(step, comm.rank(), &mut run.sim.fields, &run.sim.grid);
                if hits > 0 {
                    log_line(cfg, &format!("step={step} injected_corruption={hits}"));
                }
            }
            // Health before checkpoint: every generation on disk is
            // certified clean, so rollback always restores healthy state.
            if sentinel.due(step) {
                if let Some(v) = sentinel.check(&mut run.sim) {
                    return Some(format!("health: {v}"));
                }
            }
            None
        })();

        if let Some(cause) = fault {
            let attempt = recoveries.len() as u32 + 1;
            if attempt > cfg.max_recoveries {
                return degrade(
                    run,
                    sentinel,
                    recoveries,
                    steps_run,
                    resumed_from,
                    step,
                    &cause,
                    cfg,
                );
            }
            if let Err(e) = comm.recover() {
                log_line(cfg, &format!("step={step} recover_failed=\"{e}\""));
                return degrade(
                    run,
                    sentinel,
                    recoveries,
                    steps_run,
                    resumed_from,
                    step,
                    &cause,
                    cfg,
                );
            }
            match rollback(&mut run, &generations, sponge, cfg) {
                Some(restored_step) => {
                    log_line(
                        cfg,
                        &format!(
                            "step={step} attempt={attempt} cause=\"{cause}\" \
                             restored_step={restored_step}"
                        ),
                    );
                    recoveries.push(LpiRecovery {
                        at_step: step,
                        cause,
                        restored_step,
                    });
                    continue;
                }
                None => {
                    return degrade(
                        run,
                        sentinel,
                        recoveries,
                        steps_run,
                        resumed_from,
                        step,
                        &cause,
                        cfg,
                    )
                }
            }
        }

        if cfg.checkpoint_interval > 0 && step.is_multiple_of(cfg.checkpoint_interval) {
            // Flush barrier: every snapshot published so far is consumed
            // before the checkpoint is cut, so a rollback that replays
            // steps past this point can re-seed the pipeline without
            // double-counting samples already folded into artifacts.
            run.diag_flush();
            let bytes = dump_bytes(&run)?;
            let diag = snapshot(&run);
            // Sidecar first, dump rename last: a visible `.vpic` file
            // implies its diagnostic sidecar is already durable, so a
            // crash between the two writes never strands a dump that
            // cannot be resumed.
            write_atomic(
                &sidecar_path(&cfg.checkpoint_dir, step),
                &encode_sidecar(step, &diag),
            )?;
            write_atomic(&checkpoint_path(&cfg.checkpoint_dir, step), &bytes)?;
            generations.push_back(Generation { step, bytes, diag });
            while generations.len() > cfg.keep_checkpoints.max(1) {
                if let Some(old) = generations.pop_front() {
                    let _ = std::fs::remove_file(checkpoint_path(&cfg.checkpoint_dir, old.step));
                    let _ = std::fs::remove_file(sidecar_path(&cfg.checkpoint_dir, old.step));
                }
            }
            if !on_checkpoint(step) {
                return finish(
                    run,
                    sentinel,
                    recoveries,
                    steps_run,
                    resumed_from,
                    LpiCampaignEnd::Halted { at_step: step },
                );
            }
        }

        run.step();
        steps_run += 1;
    }
}

/// Restore the newest generation that still loads (CRC failures
/// disqualify, loudly falling back to the previous one). Returns the
/// restored step, or `None` when nothing on record is usable.
fn rollback(
    run: &mut LpiRun,
    generations: &VecDeque<Generation>,
    sponge: Option<vpic_core::sponge::Sponge>,
    cfg: &LpiCampaignConfig,
) -> Option<u64> {
    // Drain in-flight snapshots from the faulted timeline before the
    // restore, then reset the engine to the restored state below — the
    // replayed steps will republish their snapshots deterministically.
    run.diag_flush();
    for gen in generations.iter().rev() {
        match load_with_layout(
            &mut gen.bytes.as_slice(),
            run.params.pipelines,
            run.params.layout,
        ) {
            Ok(mut sim) => {
                // The v2 dump carries fields/particles/step/config; the
                // sponge and diagnostics live outside it.
                sim.set_kernel(run.params.kernel);
                sim.sponge = sponge;
                sim.lost_particles = gen.diag.lost;
                run.sim = sim;
                run.probe = gen.diag.probe.clone();
                run.backscatter_series = gen.diag.series.clone();
                run.diag_reset();
                return Some(gen.step);
            }
            Err(e) => {
                log_line(cfg, &format!("generation {} unusable: {e}", gen.step));
            }
        }
    }
    None
}

fn finish(
    mut run: LpiRun,
    sentinel: Sentinel,
    recoveries: Vec<LpiRecovery>,
    steps_run: u64,
    resumed_from: Option<u64>,
    end: LpiCampaignEnd,
) -> Result<LpiCampaignOutcome, LpiCampaignError> {
    let bytes = dump_bytes(&run)?;
    let (diag_engine, diag) = run.diag_finish();
    Ok(LpiCampaignOutcome {
        end,
        steps_run,
        resumed_from,
        recoveries,
        heals: sentinel.heals,
        reflectivity: run.reflectivity(),
        energy: run.sim.energies().total(),
        n_particles: run.sim.n_particles() as u64,
        state_fingerprint: fingerprint32(&bytes),
        diag,
        diag_engine,
    })
}

#[allow(clippy::too_many_arguments)]
fn degrade(
    mut run: LpiRun,
    sentinel: Sentinel,
    recoveries: Vec<LpiRecovery>,
    steps_run: u64,
    resumed_from: Option<u64>,
    at_step: u64,
    cause: &str,
    cfg: &LpiCampaignConfig,
) -> Result<LpiCampaignOutcome, LpiCampaignError> {
    // Graceful degrade still honours the flush barrier: the partial dump
    // and flight recorder describe a state whose diagnostics are fully
    // consumed, not racing an async worker.
    run.diag_flush();
    let partial = cfg.checkpoint_dir.join("partial.vpic");
    if let Ok(bytes) = dump_bytes(&run) {
        let _ = std::fs::write(&partial, bytes);
    }
    let flight = cfg.checkpoint_dir.join("flight.json");
    let _ = sentinel.recorder.write_json(&flight);
    log_line(
        cfg,
        &format!("step={at_step} cause=\"{cause}\" action=degraded"),
    );
    finish(
        run,
        sentinel,
        recoveries,
        steps_run,
        resumed_from,
        LpiCampaignEnd::Degraded {
            at_step,
            partial_dump: partial,
            flight_recorder: flight,
        },
    )
}

fn log_line(cfg: &LpiCampaignConfig, line: &str) {
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(cfg.checkpoint_dir.join("campaign.log"))
    {
        let _ = writeln!(f, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::sentinel::{CorruptionEvent, CorruptionMode};

    fn small_params() -> LpiParams {
        LpiParams {
            flat: 4.0,
            ppc: 4,
            a0: 0.01,
            sponge_cells: 12,
            ..Default::default()
        }
    }

    fn test_cfg(dir: &Path, steps: u64) -> LpiCampaignConfig {
        let mut cfg = LpiCampaignConfig::new(steps, 20, dir);
        // Generous thresholds: the laser pumps energy, so the ledger must
        // leave headroom; bounds/NaN monitors stay armed.
        cfg.sentinel.health_interval = 10;
        cfg.sentinel.max_energy_growth = 100.0;
        cfg
    }

    #[test]
    fn clean_campaign_completes() {
        let dir = std::env::temp_dir().join("lpi_campaign_clean");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_lpi_campaign(small_params(), &test_cfg(&dir, 60)).unwrap();
        assert!(matches!(out.end, LpiCampaignEnd::Completed));
        assert_eq!(out.steps_run, 60);
        assert!(out.recoveries.is_empty());
        assert!(out.n_particles > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_campaign_recovers_bit_identically() {
        let dir = std::env::temp_dir().join("lpi_campaign_kill");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = run_lpi_campaign(small_params(), &test_cfg(&dir, 60)).unwrap();

        let dir2 = std::env::temp_dir().join("lpi_campaign_kill2");
        let _ = std::fs::remove_dir_all(&dir2);
        let mut cfg = test_cfg(&dir2, 60);
        cfg.fault_plan = Some(FaultPlan::new(7).kill(0, 35));
        let faulted = run_lpi_campaign(small_params(), &cfg).unwrap();
        assert!(matches!(faulted.end, LpiCampaignEnd::Completed));
        assert_eq!(faulted.recoveries.len(), 1);
        assert_eq!(faulted.recoveries[0].restored_step, 20);
        // Rollback replay converges to the same bits as the clean run.
        assert_eq!(faulted.state_fingerprint, clean.state_fingerprint);
        assert_eq!(faulted.energy.to_bits(), clean.energy.to_bits());
        assert_eq!(faulted.reflectivity.to_bits(), clean.reflectivity.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn nan_corruption_rolls_back_and_completes_bit_identically() {
        let dir = std::env::temp_dir().join("lpi_campaign_nan");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = run_lpi_campaign(small_params(), &test_cfg(&dir, 60)).unwrap();

        let dir2 = std::env::temp_dir().join("lpi_campaign_nan2");
        let _ = std::fs::remove_dir_all(&dir2);
        let mut cfg = test_cfg(&dir2, 60);
        cfg.corruption = Some(CorruptionPlan::new(42).with_event(CorruptionEvent {
            step: 33,
            rank: None,
            mode: CorruptionMode::Nan,
            count: 5,
        }));
        let faulted = run_lpi_campaign(small_params(), &cfg).unwrap();
        assert!(matches!(faulted.end, LpiCampaignEnd::Completed));
        // Detection within one health interval of the step-33 injection.
        assert_eq!(faulted.recoveries.len(), 1, "{:?}", faulted.recoveries);
        assert!(faulted.recoveries[0].at_step <= 33 + 10);
        assert_eq!(faulted.state_fingerprint, clean.state_fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn halted_campaign_resumes_bit_identically() {
        let dir = std::env::temp_dir().join("lpi_campaign_halt_ref");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = run_lpi_campaign(small_params(), &test_cfg(&dir, 60)).unwrap();

        let dir2 = std::env::temp_dir().join("lpi_campaign_halt");
        let _ = std::fs::remove_dir_all(&dir2);
        let cfg = test_cfg(&dir2, 60);
        // Model a crash: stop dead once the step-40 checkpoint is durable.
        let halted = run_lpi_campaign_with(small_params(), &cfg, false, &|step| step < 40).unwrap();
        assert!(matches!(halted.end, LpiCampaignEnd::Halted { at_step: 40 }));
        assert_eq!(halted.steps_run, 40);

        // A fresh invocation resumes from disk and finishes the campaign,
        // replaying only steps past the last certified checkpoint.
        let resumed = run_lpi_campaign_with(small_params(), &cfg, true, &|_| true).unwrap();
        assert!(matches!(resumed.end, LpiCampaignEnd::Completed));
        assert_eq!(resumed.resumed_from, Some(40));
        assert_eq!(resumed.steps_run, 20);
        assert_eq!(resumed.state_fingerprint, clean.state_fingerprint);
        assert_eq!(resumed.energy.to_bits(), clean.energy.to_bits());
        assert_eq!(resumed.reflectivity.to_bits(), clean.reflectivity.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn unrecoverable_campaign_degrades_with_flight_recorder() {
        let dir = std::env::temp_dir().join("lpi_campaign_degrade");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = test_cfg(&dir, 60);
        cfg.max_recoveries = 0;
        cfg.corruption = Some(CorruptionPlan::new(3).with_event(CorruptionEvent {
            step: 25,
            rank: None,
            mode: CorruptionMode::Nan,
            count: 3,
        }));
        let out = run_lpi_campaign(small_params(), &cfg).unwrap();
        let LpiCampaignEnd::Degraded {
            at_step,
            partial_dump,
            flight_recorder,
        } = &out.end
        else {
            panic!("expected degradation, got {:?}", out.end)
        };
        assert!(*at_step >= 25 && *at_step <= 35);
        assert!(partial_dump.exists(), "partial dump missing");
        let json = std::fs::read_to_string(flight_recorder).unwrap();
        assert!(json.starts_with('{') && json.contains("\"samples\""));
        assert!(json.contains("nonfinite_fields"));
        assert!(json.contains("\"verdict\":{\"kind\":\"nonfinite_fields\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
