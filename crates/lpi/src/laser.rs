//! Laser injection via a current-sheet antenna.
//!
//! A thin sheet of transverse current `J` at one x-plane radiates plane
//! waves symmetrically: `E(t) = −(Δx/2)·J(t ∓ x/c)`. Driving
//! `Jy = −(2E₀/Δx)·sin(ω₀t)·env(t)` therefore launches waves of amplitude
//! `E₀` in both directions; the backward wave is eaten by the sponge
//! behind the antenna. `E₀ = a₀·ω₀` in normalized units (`a₀ = eE/(mₑcω₀)`
//! is the usual dimensionless laser strength the paper's intensity scan
//! varies).

use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;

/// Transverse polarization of the injected wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarization {
    /// Drives `Jy` → `Ey`/`cBz` wave.
    Y,
    /// Drives `Jz` → `Ez`/`cBy` wave.
    Z,
}

/// A current-sheet laser antenna at a fixed x-plane.
#[derive(Clone, Copy, Debug)]
pub struct LaserAntenna {
    /// Live x index of the sheet.
    pub plane: usize,
    /// Peak normalized amplitude `a₀`.
    pub a0: f32,
    /// Laser angular frequency (in `ωpe` units when the plasma is loaded
    /// at unit density).
    pub omega: f32,
    /// Linear amplitude ramp duration in steps (avoids a startup shock).
    pub ramp_steps: u64,
    pub polarization: Polarization,
}

impl LaserAntenna {
    /// Peak electric field `E₀ = a₀·ω₀`.
    pub fn e0(&self) -> f32 {
        self.a0 * self.omega
    }

    /// Envelope at `step` (linear ramp to 1).
    pub fn envelope(&self, step: u64) -> f32 {
        if self.ramp_steps == 0 || step >= self.ramp_steps {
            1.0
        } else {
            step as f32 / self.ramp_steps as f32
        }
    }

    /// Add the antenna current for this step (call from the simulation's
    /// drive hook; currents live at `t = (step+½)·dt`).
    pub fn drive(&self, f: &mut FieldArray, g: &Grid, step: u64) {
        let t = (step as f32 + 0.5) * g.dt;
        let amp = -2.0 * self.e0() / g.dx * (self.omega * t).sin() * self.envelope(step);
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                let v = g.voxel(self.plane, j, k);
                match self.polarization {
                    Polarization::Y => f.jy[v] += amp,
                    Polarization::Z => f.jz[v] += amp,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::grid::ParticleBc;
    use vpic_core::sim::Simulation;
    use vpic_core::sponge::Sponge;

    fn vacuum_sim(nx: usize, dx: f32) -> Simulation {
        let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.95);
        let bc = [
            ParticleBc::Absorb,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Absorb,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ];
        let g = Grid::new((nx, 1, 1), (dx, dx, dx), dt, bc);
        let mut sim = Simulation::new(g, 1);
        sim.sponge = Some(Sponge::symmetric(24, 0.15));
        sim
    }

    #[test]
    fn envelope_ramps_linearly() {
        let ant = LaserAntenna {
            plane: 10,
            a0: 0.1,
            omega: 2.0,
            ramp_steps: 10,
            polarization: Polarization::Y,
        };
        assert_eq!(ant.envelope(0), 0.0);
        assert_eq!(ant.envelope(5), 0.5);
        assert_eq!(ant.envelope(10), 1.0);
        assert_eq!(ant.envelope(999), 1.0);
        assert!((ant.e0() - 0.2).abs() < 1e-7);
    }

    /// In vacuum the antenna must launch a wave of amplitude E₀ toward +x
    /// (and the sponge must keep the −x wave from coming back).
    #[test]
    fn antenna_emits_expected_amplitude() {
        let nx = 512;
        let dx = 0.1f32;
        let mut sim = vacuum_sim(nx, dx);
        let omega = 3.0f32;
        let ant = LaserAntenna {
            plane: 60,
            a0: 0.05,
            omega,
            ramp_steps: 200,
            polarization: Polarization::Y,
        };
        let e0 = ant.e0();
        // Close enough that the fully-ramped wave (ramp ends ≈ t = 11)
        // arrives well within the run (transit antenna→probe ≈ 6).
        let probe = 120usize;
        let mut peak = 0.0f32;
        let g = sim.grid.clone();
        let steps = (30.0 / g.dt) as u64; // 30 time units ≫ transit time
        for _ in 0..steps {
            sim.step_with(|f, g, s| ant.drive(f, g, s));
            let v = g.voxel(probe, 1, 1);
            peak = peak.max(sim.fields.ey[v].abs());
        }
        assert!(
            (peak - e0).abs() / e0 < 0.1,
            "emitted amplitude {peak} vs expected {e0}"
        );
        // Forward wave: Ey ≈ cBz at the probe (checked at the final peak
        // via the forward/backward split).
        let (fwd, bwd) = vpic_diag::wave_split_x(&sim.fields, &g, probe);
        assert!(bwd < 0.02 * fwd, "backward contamination {bwd} vs {fwd}");
    }

    /// The sponge must absorb an outgoing wave almost completely: measure
    /// what returns to the probe after hitting the wall.
    #[test]
    fn sponge_absorbs_outgoing_wave() {
        let nx = 384;
        let dx = 0.1f32;
        let mut sim = vacuum_sim(nx, dx);
        let ant = LaserAntenna {
            plane: 60,
            a0: 0.05,
            omega: 3.0,
            ramp_steps: 100,
            polarization: Polarization::Y,
        };
        let g = sim.grid.clone();
        // Run long enough for the wave to hit the +x sponge and any
        // reflection to come back to the middle.
        let steps = (2.2 * (nx as f32) * dx / g.dt) as u64;
        let mut probe = vpic_diag::ReflectivityProbe::new(192);
        for s in 0..steps {
            sim.step_with(|f, g, s| ant.drive(f, g, s));
            if s > steps / 2 {
                probe.sample(&sim.fields, &g);
            }
        }
        let r = probe.reflectivity();
        assert!(r < 2e-2, "sponge reflectivity {r}");
    }
}
