//! Quasi-1D laser–plasma interaction run assembly: sponge-backed open
//! boundaries along x, a current-sheet antenna, a slab plasma and a
//! reflectivity probe between them — the workload of the paper's
//! reflectivity-vs-intensity parameter study, at laptop scale.

use crate::laser::{LaserAntenna, Polarization};
use crate::profile::SlabProfile;
use crate::srs::{srs_match, SrsMatch};
use vpic_core::cadence::SortPolicy;
use vpic_core::grid::{Grid, ParticleBc};
use vpic_core::maxwellian::{load_profile, Momentum};
use vpic_core::push::PushKernel;
use vpic_core::rng::Rng;
use vpic_core::sim::Simulation;
use vpic_core::species::Species;
use vpic_core::sponge::Sponge;
use vpic_core::store::Layout;
use vpic_diag::{
    DiagConfig, DiagEngine, DiagSink, DiagSnapshot, DiagStats, EngineState, ReflectivityProbe,
};

/// Parameters of an LPI run (lengths in `c/ωpe`, velocities in `c`).
#[derive(Clone, Copy, Debug)]
pub struct LpiParams {
    /// Plasma density over critical (must be < 0.25 for SRS).
    pub n_over_ncr: f64,
    /// Electron thermal velocity.
    pub vth: f64,
    /// Laser strength `a0`.
    pub a0: f64,
    /// Cell size.
    pub dx: f32,
    /// Vacuum gap between antenna and plasma (and after the plasma).
    pub vacuum: f32,
    /// Density ramp length on each side of the flat top.
    pub ramp: f32,
    /// Flat-top length.
    pub flat: f32,
    /// Macroparticles per cell at flat-top density.
    pub ppc: usize,
    /// Sponge width in cells at each end.
    pub sponge_cells: usize,
    /// RNG seed.
    pub seed: u64,
    /// Push pipelines.
    pub pipelines: usize,
    /// Antenna amplitude ramp, in laser periods.
    pub ramp_periods: f32,
    /// Backscatter seed: a counter-propagating beam at the SRS-matched
    /// scattered frequency with amplitude `seed_frac · E0`, injected from
    /// the far side of the plasma (0 disables). Seeding turns the
    /// reflectivity measurement into a controlled amplification
    /// measurement, the standard way to beat the PIC noise floor.
    pub seed_frac: f64,
    /// Mobile ions: `Some(mass)` loads a Z = 1 ion species with this mass
    /// (in electron masses; use a reduced mass like 100–400 to make
    /// ion-timescale physics such as SBS affordable) and ion temperature
    /// `ti_over_te · Te`. `None` keeps the immobile neutralizing
    /// background (fine for SRS timescales).
    pub ion_mass: Option<f32>,
    /// Ion-to-electron temperature ratio (used only with mobile ions).
    pub ti_over_te: f32,
    /// Particle storage layout (`layout = aos|aosoa` deck knob).
    pub layout: Layout,
    /// AoSoA push kernel (`kernel = scalar|lane` deck knob). Bit-identical
    /// by contract; a diagnosis/ablation switch, not a physics knob.
    pub kernel: PushKernel,
    /// Sort cadence (`sort_interval = auto|<n>` deck knob), applied to
    /// every species. Cadence decisions feed only on deterministic
    /// counters, so `auto` keeps the bit-identity contract.
    pub sort: SortPolicy,
    /// Diagnostics pipeline (`[diag]` deck section): mode, snapshot
    /// cadence, queue depth, particle decimation, series retention.
    pub diag: DiagConfig,
}

impl Default for LpiParams {
    fn default() -> Self {
        LpiParams {
            n_over_ncr: 0.1,
            vth: 0.07,
            a0: 0.02,
            dx: 0.1,
            vacuum: 4.0,
            ramp: 2.0,
            flat: 16.0,
            ppc: 64,
            sponge_cells: 24,
            seed: 1234,
            pipelines: 1,
            ramp_periods: 5.0,
            seed_frac: 0.0,
            ion_mass: None,
            ti_over_te: 0.1,
            layout: Layout::default(),
            kernel: PushKernel::default(),
            sort: SortPolicy::default(),
            diag: DiagConfig::default(),
        }
    }
}

/// An assembled LPI simulation with its instruments.
pub struct LpiRun {
    pub sim: Simulation,
    pub antenna: LaserAntenna,
    /// Optional counter-propagating seed antenna at ω_s.
    pub seed_antenna: Option<LaserAntenna>,
    pub probe: ReflectivityProbe,
    pub srs: SrsMatch,
    pub params: LpiParams,
    pub profile: SlabProfile,
    /// Steps to skip before reflectivity sampling (laser transit + ramp).
    pub measure_after: u64,
    /// Electron species index.
    pub electrons: usize,
    /// Ion species index (when `ion_mass` was set).
    pub ions: Option<usize>,
    /// Backward-wave amplitude history at the probe plane (sampled every
    /// step once measurement starts), for backscatter spectra. Capped by
    /// `params.diag.series_cap` (windowed retention; the discarded count
    /// rides the checkpoint sidecar with the samples).
    pub backscatter_series: vpic_diag::TimeSeries,
    /// Diagnostics sink: `Off` (inline probe only), `Sync` (engine inline,
    /// the oracle) or `Async` (engine on a worker behind a bounded queue).
    pub sink: DiagSink,
    /// Backscatter spectrum memoized by series length (satellite of the
    /// pipeline refactor: progress probing must not re-run the FFT).
    spectrum_cache: Option<(usize, Vec<(f64, f64)>)>,
}

impl LpiRun {
    /// Build the run. Layout along x (cells):
    /// `[sponge][antenna]…gap…[probe]…gap…[ramp|flat|ramp]…gap…[sponge]`.
    pub fn new(params: LpiParams) -> Self {
        let srs = srs_match(params.n_over_ncr, params.vth);
        let dx = params.dx;
        let sponge_len = params.sponge_cells as f32 * dx;
        let x_antenna = sponge_len + 3.0 * dx;
        let x_plasma = x_antenna + params.vacuum;
        let profile = SlabProfile {
            x_enter: x_plasma,
            ramp_up: params.ramp,
            flat: params.flat,
            ramp_down: params.ramp,
        };
        let length = profile.x_exit() + params.vacuum + sponge_len;
        let nx = (length / dx).ceil() as usize;
        let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.95);
        let bc = [
            ParticleBc::Absorb,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Absorb,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ];
        let g = Grid::new((nx, 1, 1), (dx, dx, dx), dt, bc);
        let mut sim = Simulation::new(g, params.pipelines);
        sim.set_layout(params.layout);
        sim.set_kernel(params.kernel);
        sim.sponge = Some(Sponge::symmetric(params.sponge_cells, 0.15));

        // Electrons; ions are an immobile neutralizing background with the
        // same profile (implicit: only current fluctuations drive fields,
        // so do NOT enable Marder cleaning on LPI runs).
        let mut e = Species::new("electron", -1.0, 1.0).with_sort_policy(params.sort);
        let mut rng = Rng::seeded(params.seed);
        load_profile(
            &mut e,
            &sim.grid,
            &mut rng,
            params.ppc,
            Momentum::thermal(params.vth as f32),
            1.0,
            |x, _, _| profile.density(x),
        );
        let electrons = sim.add_species(e);

        // Optional mobile ions: same profile, Z = 1, neutralizing the
        // electrons exactly in expectation.
        let ions = params.ion_mass.map(|mi| {
            let mut ion = Species::new("ion", 1.0, mi).with_sort_policy(params.sort);
            let mut rng = Rng::seeded(params.seed ^ 0x1042);
            let vth_i = params.vth as f32 * (params.ti_over_te / mi).sqrt();
            load_profile(
                &mut ion,
                &sim.grid,
                &mut rng,
                params.ppc,
                Momentum::thermal(vth_i),
                1.0,
                |x, _, _| profile.density(x),
            );
            sim.add_species(ion)
        });

        let omega = srs.omega0 as f32;
        let period_steps = (2.0 * std::f32::consts::PI / (omega * sim.grid.dt)) as u64;
        let antenna = LaserAntenna {
            plane: (x_antenna / dx) as usize,
            a0: params.a0 as f32,
            omega,
            ramp_steps: (params.ramp_periods * period_steps as f32) as u64,
            polarization: Polarization::Y,
        };
        // Probe halfway between antenna and plasma entry.
        let probe_plane = ((x_antenna + 0.5 * params.vacuum) / dx) as usize;
        let probe = ReflectivityProbe::new(probe_plane);

        // Counter-propagating seed from the far vacuum gap: its backward
        // component crosses the slab (getting SRS-amplified) to the probe.
        let seed_antenna = (params.seed_frac > 0.0).then(|| {
            let x_seed = profile.x_exit() + 0.5 * params.vacuum;
            let omega_s = srs.omega_s as f32;
            LaserAntenna {
                plane: (x_seed / dx) as usize,
                // Match E_seed = seed_frac·E0 at the scattered frequency.
                a0: (params.seed_frac * params.a0) as f32 * omega / omega_s,
                omega: omega_s,
                ramp_steps: antenna.ramp_steps,
                polarization: Polarization::Y,
            }
        });

        // Skip the transient: antenna ramp + one full domain transit.
        let transit = (length / sim.grid.dt) as u64;
        let measure_after = antenna.ramp_steps + transit;

        let dt = sim.grid.dt as f64;
        let backscatter_series =
            vpic_diag::TimeSeries::new("backward amplitude", dt).with_cap(params.diag.series_cap);
        let sink = DiagSink::new(&params.diag, dt);
        LpiRun {
            sim,
            antenna,
            seed_antenna,
            probe,
            srs,
            params,
            profile,
            measure_after,
            electrons,
            ions,
            backscatter_series,
            sink,
            spectrum_cache: None,
        }
    }

    /// A reasonable total step count: the transient plus `n_extra` domain
    /// transits of measurement window.
    pub fn suggested_steps(&self, n_extra: f32) -> u64 {
        let transit = (self.domain_length() / self.sim.grid.dt) as u64;
        self.measure_after + (n_extra * transit as f32) as u64
    }

    /// Physical domain length.
    pub fn domain_length(&self) -> f32 {
        self.sim.grid.extent().0
    }

    /// Advance one step (drives the antenna, samples the probe once past
    /// the transient, publishes a snapshot to the diagnostics sink).
    ///
    /// Probe sampling stays inline by design: it is cheap (one plane
    /// sweep), checkpoint-authoritative, and every downstream artifact
    /// must agree with it bit-for-bit. The pipeline offloads only the
    /// derived work (FFTs, spectrograms, artifact writes).
    pub fn step(&mut self) {
        let antenna = self.antenna;
        let seed = self.seed_antenna;
        let measure_after = self.measure_after;
        let cadence = self.params.diag.cadence.max(1);
        let decimation = self.params.diag.decimation.max(1);
        let electrons = self.electrons;
        let probe = &mut self.probe;
        let series = &mut self.backscatter_series;
        let sink = &mut self.sink;
        self.sim.step_with_observed(
            |f, g, s| {
                antenna.drive(f, g, s);
                if let Some(seed) = seed {
                    seed.drive(f, g, s);
                }
            },
            |f, g, species, step| {
                if step < measure_after {
                    return;
                }
                probe.sample(f, g);
                // Instantaneous backward-wave field at the probe plane
                // (one transverse point suffices in quasi-1D).
                let v = g.voxel(probe.plane, 1, 1);
                let backward = 0.5 * (f.ey[v] - f.cbz[v]);
                series.push(backward as f64);
                if sink.is_off() {
                    return;
                }
                // Heavy snapshots key on the absolute step number, so a
                // rollback replay regenerates the identical sequence.
                let heavy = step.is_multiple_of(cadence);
                let (slab, particles) = if heavy {
                    let mut slab = sink.slab_buffer();
                    for k in 1..=g.nz {
                        for j in 1..=g.ny {
                            let v = g.voxel(probe.plane, j, k);
                            slab.extend_from_slice(&[
                                f.ey[v] as f64,
                                f.ez[v] as f64,
                                f.cby[v] as f64,
                                f.cbz[v] as f64,
                            ]);
                        }
                    }
                    let parts: Vec<f32> = species[electrons]
                        .iter()
                        .step_by(decimation)
                        .map(|p| (p.ux * p.ux + p.uy * p.uy + p.uz * p.uz).sqrt())
                        .collect();
                    (Some(slab), Some(parts))
                } else {
                    (None, None)
                };
                sink.publish(DiagSnapshot {
                    step,
                    time: step as f64 * g.dt as f64,
                    backward: backward as f64,
                    probe_raw: probe.raw_state(),
                    slab,
                    particles,
                });
            },
        );
    }

    /// Barrier: every published snapshot has been consumed on return.
    /// Called before every checkpoint, rollback and graceful degrade.
    pub fn diag_flush(&mut self) {
        self.sink.flush();
    }

    /// Rebuild the diagnostics engine from the run's (just-restored)
    /// probe/series state, so replayed steps never double-count a
    /// sample. Callers flush first to drain stale in-flight snapshots.
    pub fn diag_reset(&mut self) {
        if self.sink.is_off() {
            return;
        }
        self.sink.reset(EngineState {
            samples: self.backscatter_series.samples.clone(),
            discarded: self.backscatter_series.discarded,
            probe_raw: self.probe.raw_state(),
            step: self.sim.step_count,
        });
    }

    /// Route the engine's streaming artifacts (`progress.json`) to `dir`.
    pub fn diag_set_out_dir(&mut self, dir: std::path::PathBuf) {
        self.sink.set_out_dir(dir);
    }

    /// Pipeline counters so far (safe to sample mid-run).
    pub fn diag_stats(&self) -> DiagStats {
        self.sink.stats()
    }

    /// Stop the sink and recover the engine + final counters. `None`
    /// engine when the mode was `off`.
    pub fn diag_finish(&mut self) -> (Option<Box<DiagEngine>>, DiagStats) {
        self.sink.finish()
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Measured time-averaged reflectivity.
    pub fn reflectivity(&self) -> f64 {
        self.probe.reflectivity()
    }

    /// The electron species.
    pub fn electron_species(&self) -> &Species {
        &self.sim.species[self.electrons]
    }

    /// The ion species, when mobile ions were requested.
    pub fn ion_species(&self) -> Option<&Species> {
        self.ions.map(|i| &self.sim.species[i])
    }

    /// Power spectrum of the backward wave at the probe:
    /// `(ω, power)` bins. An SRS backscatter line sits at
    /// `ω_s = ω0 − ω_ek`; an SBS line almost on top of `ω0`. Memoized by
    /// series length, so repeated probing (vpic-run progress lines,
    /// sweep heartbeats) costs O(1) between new samples; empty series →
    /// empty spectrum (no zero-padded fake bins).
    pub fn backscatter_spectrum(&mut self) -> &[(f64, f64)] {
        let len = self.backscatter_series.samples.len();
        if self.spectrum_cache.as_ref().map(|c| c.0) != Some(len) {
            let spec = vpic_diag::backscatter_spectrum_of(
                &self.backscatter_series.samples,
                self.backscatter_series.dt,
            );
            self.spectrum_cache = Some((len, spec));
        }
        &self.spectrum_cache.as_ref().unwrap().1
    }

    /// Strongest backscatter line below `omega_max` (skips the DC bin).
    /// `None` when the post-DC window is empty — a too-short run or an
    /// `omega_max` below the first bin — instead of a silent `(0, 0)`.
    pub fn backscatter_peak(&mut self, omega_max: f64) -> Option<(f64, f64)> {
        vpic_diag::spectrum_peak(self.backscatter_spectrum(), omega_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        let run = LpiRun::new(LpiParams::default());
        let g = &run.sim.grid;
        assert!(run.antenna.plane > run.params.sponge_cells);
        assert!(run.probe.plane > run.antenna.plane);
        let probe_x = run.probe.plane as f32 * g.dx;
        assert!(probe_x < run.profile.x_enter);
        assert!(run.profile.x_exit() < g.extent().0 - run.params.sponge_cells as f32 * g.dx);
        // Laser resolved: ≥ 15 cells per vacuum wavelength.
        let lambda0 = 2.0 * std::f32::consts::PI / run.srs.k0 as f32;
        assert!(lambda0 / g.dx > 15.0, "λ0/dx = {}", lambda0 / g.dx);
        assert!(run.electron_species().len() > 1000);
    }

    /// Short smoke run: the probe must register incident power close to
    /// the antenna's E0²/2 and a small finite backscatter level.
    #[test]
    fn laser_reaches_probe_with_expected_intensity() {
        let params = LpiParams {
            flat: 8.0,
            ppc: 8,
            a0: 0.01,
            ..Default::default()
        };
        let mut run = LpiRun::new(params);
        let steps = run.suggested_steps(1.0);
        run.run(steps);
        let e0 = run.antenna.e0() as f64;
        let incident = run.probe.mean_incident();
        // Mean of (E0 sin)² = E0²/2; tolerate dispersion/averaging slop.
        assert!(
            (incident - 0.5 * e0 * e0).abs() < 0.3 * 0.5 * e0 * e0,
            "incident {incident} vs {}",
            0.5 * e0 * e0
        );
        let r = run.reflectivity();
        assert!(r.is_finite() && r < 0.5, "implausible reflectivity {r}");
        // Particles should not be lost in bulk (only sponge-region strays).
        assert!(run.sim.lost_particles < (run.electron_species().len() / 10) as u64);
    }
}
