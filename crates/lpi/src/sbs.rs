//! Linear theory of stimulated Brillouin backscatter (SBS) — the
//! ion-acoustic sibling of SRS and the other backscatter channel the
//! hohlraum LPI campaign cares about. Needs mobile ions (see
//! [`crate::setup::LpiParams::ion_mass`]).
//!
//! Normalized units (`ωpe = c = 1`): the ion-acoustic speed is
//! `c_s = √((Z·Te + 3·Ti)/mᵢ)` with `Te = vth²` (electron), so SBS's
//! daughter wave sits at `ω_ia = k_ia·c_s` with `k_ia ≈ 2·k0` for direct
//! backscatter.

/// Resolved SBS backscatter triad.
#[derive(Clone, Copy, Debug)]
pub struct SbsMatch {
    /// Laser frequency / wavenumber.
    pub omega0: f64,
    pub k0: f64,
    /// Scattered EM wave (backward).
    pub omega_s: f64,
    pub k_s: f64,
    /// Ion-acoustic wave.
    pub omega_ia: f64,
    pub k_ia: f64,
    /// Ion-acoustic speed (units of c).
    pub c_s: f64,
    /// Electron plasma frequency over ion plasma frequency `√(mᵢ/Z)`.
    pub omega_pi: f64,
}

/// Solve the SBS matching conditions for density `n_over_ncr`, electron
/// thermal velocity `vth_e`, ion charge `z`, ion mass `m_i` (in electron
/// masses) and ion temperature ratio `ti_over_te`.
pub fn sbs_match(n_over_ncr: f64, vth_e: f64, z: f64, m_i: f64, ti_over_te: f64) -> SbsMatch {
    assert!(
        n_over_ncr > 0.0 && n_over_ncr < 1.0,
        "SBS needs an underdense plasma"
    );
    assert!(m_i > 1.0 && z >= 1.0);
    let omega0 = 1.0 / n_over_ncr.sqrt();
    let k0 = (omega0 * omega0 - 1.0).sqrt();
    let te = vth_e * vth_e; // kTe/(me c²)
    let c_s = ((z * te + 3.0 * ti_over_te * te) / m_i).sqrt();
    // Backscatter: k_ia = k0 + |k_s|, ω_ia = k_ia·c_s ≪ ω0; iterate.
    let mut k_ia = 2.0 * k0;
    let mut omega_ia = k_ia * c_s;
    let mut k_s = k0;
    for _ in 0..100 {
        let omega_s = omega0 - omega_ia;
        k_s = (omega_s * omega_s - 1.0).max(0.0).sqrt();
        k_ia = k0 + k_s;
        omega_ia = k_ia * c_s;
    }
    let omega_pi = (z / m_i).sqrt();
    SbsMatch {
        omega0,
        k0,
        omega_s: omega0 - omega_ia,
        k_s,
        omega_ia,
        k_ia,
        c_s,
        omega_pi,
    }
}

impl SbsMatch {
    /// Homogeneous SBS growth rate (Kruer):
    /// `γ0 = (k_ia·a0/4)·ω_pi/√(ω_ia·ω_s)`.
    pub fn growth_rate(&self, a0: f64) -> f64 {
        self.k_ia * a0 / 4.0 * self.omega_pi / (self.omega_ia * self.omega_s).sqrt()
    }

    /// Ion Landau damping estimate for `ZTe/Ti = zte_over_ti`
    /// (strongly damped when Ti ≳ ZTe/3; the standard fit
    /// `ν/ω ≈ √(π/8)·(ZTe/Ti)^{3/2}·exp(−ZTe/(2Ti)−3/2)` plus the electron
    /// contribution `√(π·Z·me/(8·mi))`).
    pub fn ion_landau_damping(&self, z: f64, m_i: f64, ti_over_te: f64) -> f64 {
        let zt = z / ti_over_te.max(1e-9);
        let ion = (std::f64::consts::PI / 8.0).sqrt() * zt.powf(1.5) * (-0.5 * zt - 1.5).exp();
        let electron = (std::f64::consts::PI * z / (8.0 * m_i)).sqrt();
        (ion + electron) * self.omega_ia
    }

    /// SBS and SRS occupy very different frequency bands: the SBS-shifted
    /// light is barely redshifted (`ω_s ≈ ω0`), SRS by ≳ ωpe. Useful for
    /// spectral diagnostics.
    pub fn relative_shift(&self) -> f64 {
        self.omega_ia / self.omega0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hydrogenic() -> SbsMatch {
        sbs_match(0.1, 0.07, 1.0, 1836.0, 0.1)
    }

    #[test]
    fn matching_closes() {
        let m = hydrogenic();
        assert!((m.omega0 - (m.omega_s + m.omega_ia)).abs() < 1e-9);
        assert!((m.k_ia - (m.k0 + m.k_s)).abs() < 1e-9);
        assert!((m.omega_ia - m.k_ia * m.c_s).abs() < 1e-12);
        // Near-direct backscatter: k_ia ≈ 2k0 within a percent.
        assert!((m.k_ia - 2.0 * m.k0).abs() / (2.0 * m.k0) < 0.01);
        // Tiny redshift compared to SRS.
        assert!(m.relative_shift() < 0.01, "shift {}", m.relative_shift());
    }

    #[test]
    fn acoustic_speed_scales() {
        let h = sbs_match(0.1, 0.07, 1.0, 1836.0, 0.1);
        let heavy = sbs_match(0.1, 0.07, 1.0, 4.0 * 1836.0, 0.1);
        assert!((h.c_s / heavy.c_s - 2.0).abs() < 1e-9);
        let hot = sbs_match(0.1, 0.14, 1.0, 1836.0, 0.1);
        assert!((hot.c_s / h.c_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn growth_rate_properties() {
        let m = hydrogenic();
        let g = m.growth_rate(0.02);
        assert!(g > 0.0);
        assert!((m.growth_rate(0.04) / g - 2.0).abs() < 1e-12);
        // SBS grows slower than SRS at the same a0 (ω_pi ≪ ωpe).
        let srs = crate::srs::srs_match(0.1, 0.07);
        assert!(g < srs.growth_rate(0.02));
    }

    #[test]
    fn landau_damping_strong_when_ti_comparable() {
        let m = hydrogenic();
        let cold_ions = m.ion_landau_damping(1.0, 1836.0, 0.05);
        let warm_ions = m.ion_landau_damping(1.0, 1836.0, 0.5);
        assert!(warm_ions > 5.0 * cold_ions, "{cold_ions} vs {warm_ions}");
        // Electron contribution keeps even cold-ion damping finite.
        assert!(cold_ions > 0.0);
    }
}
