//! Linear theory of stimulated Raman backscatter (SRS) — the frequency
//! matching, growth rate, Landau damping and phase velocity used to design
//! the paper's reflectivity-vs-intensity parameter study and to validate
//! the PIC results against theory.
//!
//! Normalized units: `ωpe = c = 1`; the laser drives at
//! `ω0 = 1/√(n/ncr)`; thermal velocity `vth = λD·ωpe`.

/// Resolved SRS backscatter triad for given plasma conditions.
#[derive(Clone, Copy, Debug)]
pub struct SrsMatch {
    /// Laser frequency (ωpe units).
    pub omega0: f64,
    /// Laser wavenumber (ωpe/c units).
    pub k0: f64,
    /// Scattered EM frequency.
    pub omega_s: f64,
    /// Scattered EM wavenumber magnitude (propagates backward).
    pub k_s: f64,
    /// Electron plasma wave frequency.
    pub omega_ek: f64,
    /// Electron plasma wave wavenumber.
    pub k_ek: f64,
    /// `k_ek·λD` — the kinetic parameter controlling Landau damping and
    /// trapping (the paper's runs sit near 0.3 where trapping matters).
    pub k_lambda_d: f64,
    /// Plasma-wave phase velocity `ω_ek/k_ek` (units of c).
    pub v_phase: f64,
}

/// Solve the SRS backscatter matching conditions for density `n_over_ncr`
/// and thermal velocity `vth` (in c). Panics if the plasma is overdense
/// for SRS (`n/ncr ≥ 0.25` leaves no propagating scattered wave).
pub fn srs_match(n_over_ncr: f64, vth: f64) -> SrsMatch {
    assert!(
        n_over_ncr > 0.0 && n_over_ncr < 0.25,
        "SRS needs n/ncr < 1/4"
    );
    assert!((0.0..0.5).contains(&vth));
    let omega0 = 1.0 / n_over_ncr.sqrt();
    let k0 = (omega0 * omega0 - 1.0).sqrt();
    // Fixed-point iterate the triad.
    let mut omega_ek = 1.0f64;
    let mut k_s = 0.0f64;
    let mut k_ek = k0;
    for _ in 0..200 {
        let omega_s = omega0 - omega_ek;
        assert!(
            omega_s > 1.0,
            "scattered wave evanescent; lower n/ncr or vth"
        );
        k_s = (omega_s * omega_s - 1.0).sqrt();
        k_ek = k0 + k_s; // backward scatter: k_s is against the pump
        omega_ek = (1.0 + 3.0 * (k_ek * vth) * (k_ek * vth)).sqrt();
    }
    let omega_s = omega0 - omega_ek;
    SrsMatch {
        omega0,
        k0,
        omega_s,
        k_s,
        omega_ek,
        k_ek,
        k_lambda_d: k_ek * vth,
        v_phase: omega_ek / k_ek,
    }
}

impl SrsMatch {
    /// Homogeneous SRS growth rate for pump strength `a0` (Kruer):
    /// `γ0 = (k_ek·a0/4)·√(ωpe²/(ω_ek·ω_s))`.
    pub fn growth_rate(&self, a0: f64) -> f64 {
        self.k_ek * a0 / 4.0 * (1.0 / (self.omega_ek * self.omega_s)).sqrt()
    }

    /// Landau damping rate of the plasma wave (Maxwellian, leading order):
    /// `ν = √(π/8)·ω_ek/(kλD)³·exp(−1/(2(kλD)²) − 3/2)`.
    pub fn landau_damping(&self) -> f64 {
        let kld = self.k_lambda_d;
        if kld <= 0.0 {
            return 0.0;
        }
        (std::f64::consts::PI / 8.0).sqrt() * self.omega_ek / (kld * kld * kld)
            * (-1.0 / (2.0 * kld * kld) - 1.5).exp()
    }

    /// Group velocity of the scattered EM wave (units of c).
    pub fn v_group_scattered(&self) -> f64 {
        self.k_s / self.omega_s
    }

    /// Steady-state convective intensity gain exponent through a
    /// homogeneous slab of length `L` (strong-damping regime):
    /// `G = 2γ0²L/(ν_e·v_gs)`. Reflectivity of a seed is `R ≈ R_seed·e^G`
    /// until pump depletion / trapping saturates it.
    pub fn linear_gain(&self, a0: f64, slab_length: f64) -> f64 {
        let nu = self.landau_damping();
        if nu <= 0.0 {
            return f64::INFINITY;
        }
        2.0 * self.growth_rate(a0).powi(2) * slab_length / (nu * self.v_group_scattered())
    }

    /// The classic threshold indicator: growth must beat damping,
    /// `γ0² > ν_e·ν_s`. With negligible scattered-light damping in a short
    /// slab this reduces to comparing `γ0` with `ν_e/2`-scale losses; we
    /// report `γ0/ν_e`.
    pub fn growth_to_damping(&self, a0: f64) -> f64 {
        let nu = self.landau_damping();
        if nu > 0.0 {
            self.growth_rate(a0) / nu
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_conditions_close() {
        let m = srs_match(0.1, 0.07);
        // ω0 = 1/√0.1 ≈ 3.1623, k0 = √(ω0²−1) = 3.0.
        assert!((m.omega0 - 3.1623).abs() < 1e-3);
        assert!((m.k0 - 3.0).abs() < 1e-3);
        // Triad closes: ω0 = ωs + ωek, k0 = kek − ks (ks backward).
        assert!((m.omega0 - (m.omega_s + m.omega_ek)).abs() < 1e-9);
        assert!((m.k_ek - (m.k0 + m.k_s)).abs() < 1e-9);
        // Bohm-Gross satisfied.
        let bg = (1.0 + 3.0 * m.k_lambda_d * m.k_lambda_d).sqrt();
        assert!((m.omega_ek - bg).abs() < 1e-9);
        // Dispersion of scattered wave satisfied.
        assert!((m.omega_s * m.omega_s - (1.0 + m.k_s * m.k_s)).abs() < 1e-9);
        // Phase velocity below c, above vth.
        assert!(m.v_phase < 1.0 && m.v_phase > 0.07);
    }

    #[test]
    fn growth_rate_scales_linearly_with_a0() {
        let m = srs_match(0.08, 0.05);
        let g1 = m.growth_rate(0.01);
        let g2 = m.growth_rate(0.02);
        assert!((g2 / g1 - 2.0).abs() < 1e-12);
        assert!(g1 > 0.0);
    }

    #[test]
    fn landau_damping_grows_rapidly_with_k_lambda_d() {
        let cold = srs_match(0.1, 0.04);
        let warm = srs_match(0.1, 0.12);
        assert!(warm.k_lambda_d > cold.k_lambda_d);
        assert!(warm.landau_damping() > 100.0 * cold.landau_damping());
    }

    #[test]
    fn gain_increases_with_length_and_intensity() {
        let m = srs_match(0.1, 0.09);
        assert!(m.linear_gain(0.02, 50.0) > m.linear_gain(0.02, 25.0));
        assert!(m.linear_gain(0.04, 25.0) > m.linear_gain(0.02, 25.0));
        assert!(m.growth_to_damping(0.04) > m.growth_to_damping(0.02));
    }

    #[test]
    #[should_panic(expected = "n/ncr < 1/4")]
    fn overdense_rejected() {
        srs_match(0.3, 0.05);
    }
}
