//! Corruption matrix for v3 restart dumps: *any* truncation and *any*
//! single-bit flip of a valid dump — compressed or raw sections alike —
//! must surface as a typed [`CheckpointError`], never a panic and never a
//! silently-accepted restore. Offsets are proptest-chosen so the matrix
//! covers the magic, version word, section length prefixes, encoding
//! bytes, payloads and CRCs without enumerating the format by hand.

use proptest::prelude::*;
use std::sync::OnceLock;
use vpic_core::maxwellian::Momentum;
use vpic_core::species::Species;
use vpic_parallel::dcheckpoint::{dump_rank_bytes, load_rank};
use vpic_parallel::decomposition::DomainSpec;
use vpic_parallel::dsim::DistributedSim;

fn spec() -> DomainSpec {
    DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, 1)
}

/// One valid dump per encoding mode, built from a sim with a few steps of
/// real plasma history (so compressed sections are actually compressed).
fn dumps() -> &'static [Vec<u8>; 2] {
    static DUMPS: OnceLock<[Vec<u8>; 2]> = OnceLock::new();
    DUMPS.get_or_init(|| {
        let (mut results, _) = nanompi::run_expect(1, |comm| {
            let mut sim = DistributedSim::new(spec(), 0, 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 7, 1.0, 8, Momentum::thermal(0.08));
            for _ in 0..3 {
                sim.step(comm).unwrap();
            }
            let compressed = dump_rank_bytes(&sim, true).unwrap();
            let raw = dump_rank_bytes(&sim, false).unwrap();
            [compressed, raw]
        });
        results.remove(0)
    })
}

#[test]
fn pristine_dumps_restore() {
    // Sanity for the property tests below: un-tampered dumps load fine,
    // so every rejection they observe is caused by the tampering.
    for dump in dumps() {
        let sim = load_rank(spec(), 0, 1, &mut dump.as_slice()).expect("pristine dump loads");
        assert!(!sim.species[0].is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncated_dump_yields_typed_error(which in 0usize..2usize, frac in 0usize..10_000usize) {
        let dump = &dumps()[which];
        // Any proper prefix, from the empty file up to one byte short.
        let cut_len = frac * (dump.len() - 1) / 9_999;
        let cut = &dump[..cut_len];
        let r = load_rank(spec(), 0, 1, &mut &cut[..]);
        prop_assert!(
            r.is_err(),
            "truncation to {cut_len}/{} bytes accepted (mode {which})",
            dump.len()
        );
    }

    #[test]
    fn single_bit_flip_yields_typed_error(
        which in 0usize..2,
        offset in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let dump = &dumps()[which];
        let pos = offset * (dump.len() - 1) / 9_999;
        let mut bad = dump.clone();
        bad[pos] ^= 1u8 << bit;
        let r = load_rank(spec(), 0, 1, &mut bad.as_slice());
        prop_assert!(
            r.is_err(),
            "bit {bit} flip at byte {pos}/{} went undetected (mode {which})",
            dump.len()
        );
    }
}
