//! End-to-end rollback-recovery: a campaign that loses a rank mid-flight
//! must recover from checkpoints automatically and end in *exactly* the
//! state of an uninterrupted run — and a campaign whose recovery budget is
//! exhausted must degrade gracefully instead of aborting the process.

use std::path::PathBuf;
use std::time::Duration;
use vpic_core::maxwellian::Momentum;
use vpic_core::species::Species;
use vpic_parallel::campaign::{run_campaign, CampaignConfig, CampaignEnd, RecoveryMode};
use vpic_parallel::decomposition::DomainSpec;
use vpic_parallel::dsim::DistributedSim;

const RANKS: usize = 4;
const STEPS: u64 = 12;

fn spec() -> DomainSpec {
    DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, RANKS)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_test_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_sim(rank: usize) -> DistributedSim {
    // One pipeline per rank: current reduction order is deterministic, so
    // replay after rollback is bit-exact.
    let mut sim = DistributedSim::new(spec(), rank, 1);
    let si = sim.add_species(Species::new("e", -1.0, 1.0));
    sim.load_uniform(si, 7, 1.0, 8, Momentum::thermal(0.08));
    sim
}

/// Final state snapshot for exact comparison across runs.
type Snapshot = (u64, Vec<vpic_core::Particle>, Vec<f32>, Vec<f32>);

fn campaign_snapshot(
    comm: &mut nanompi::Comm,
    dir: &std::path::Path,
) -> (Snapshot, vpic_parallel::campaign::CampaignOutcome) {
    campaign_snapshot_mode(comm, dir, RecoveryMode::Rollback)
}

fn campaign_snapshot_mode(
    comm: &mut nanompi::Comm,
    dir: &std::path::Path,
    mode: RecoveryMode,
) -> (Snapshot, vpic_parallel::campaign::CampaignOutcome) {
    let cfg = CampaignConfig::new(STEPS, 4, dir)
        .with_op_timeout(Duration::from_millis(500))
        .with_health_interval(2)
        .with_recovery(mode);
    let (sim, outcome) = run_campaign(comm, build_sim(comm.rank()), &cfg).unwrap();
    let snap = (
        sim.step_count,
        sim.species[0].to_particles(),
        sim.fields.ex.clone(),
        sim.fields.ey.clone(),
    );
    (snap, outcome)
}

#[test]
fn killed_rank_recovers_and_matches_uninterrupted_run() {
    let clean_dir = temp_dir("recovery_clean");
    let fault_dir = temp_dir("recovery_fault");

    // Reference: no faults.
    let (clean, _) = nanompi::run(RANKS, |comm| {
        let (snap, outcome) = campaign_snapshot(comm, &clean_dir.join(format!("_{}", 0)));
        assert!(matches!(outcome.end, CampaignEnd::Completed));
        assert!(outcome.recoveries.is_empty());
        snap
    });

    // Same campaign, but rank 2 is killed at step 6 (checkpoints at 0, 4,
    // 8: the world must roll back to step 4 and replay).
    let plan = nanompi::FaultPlan::new(1).kill(2, 6);
    let (faulted, _) = nanompi::run_with_faults(RANKS, Some(plan), |comm| {
        let (snap, outcome) = campaign_snapshot(comm, &fault_dir.join(format!("_{}", 0)));
        assert!(
            matches!(outcome.end, CampaignEnd::Completed),
            "campaign did not complete"
        );
        assert!(
            !outcome.recoveries.is_empty(),
            "rank {} recorded no recovery, but the world lost a rank",
            comm.rank()
        );
        let ev = &outcome.recoveries[0];
        assert!(ev.restored_step <= ev.at_step);
        snap
    });

    for rank in 0..RANKS {
        let a = clean[rank].as_ref().expect("clean rank ok");
        let b = faulted[rank].as_ref().expect("faulted rank ok");
        assert_eq!(a.0, STEPS, "clean run did not finish");
        assert_eq!(b.0, STEPS, "faulted run did not finish");
        assert_eq!(
            a.1, b.1,
            "rank {rank}: particles differ after recovery (not bit-identical)"
        );
        assert_eq!(a.2, b.2, "rank {rank}: ex fields differ after recovery");
        assert_eq!(a.3, b.3, "rank {rank}: ey fields differ after recovery");
    }

    // Recovery was logged on disk.
    let log = fault_dir.join("_0").join("recovery_r0002.log");
    let contents = std::fs::read_to_string(&log).expect("recovery log written");
    assert!(
        contents.contains("restored_step="),
        "log has no restore record: {contents}"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}

#[test]
fn hot_spare_replaces_killed_rank_and_matches_uninterrupted_run() {
    let clean_dir = temp_dir("hotspare_clean");
    let fault_dir = temp_dir("hotspare_fault");

    // Reference: no faults (hot-spare mode changes nothing on a clean run).
    let (clean, _) = nanompi::run(RANKS, |comm| {
        let (snap, outcome) =
            campaign_snapshot_mode(comm, &clean_dir.join("_0"), RecoveryMode::HotSpare);
        assert!(matches!(outcome.end, CampaignEnd::Completed));
        assert!(outcome.recoveries.is_empty());
        assert_eq!(
            outcome.finished_by,
            std::thread::current().id(),
            "no fault, yet a spare thread finished the campaign"
        );
        snap
    });

    // Rank 2 is killed at step 6. In hot-spare mode its worker thread must
    // never step the sim again: a freshly spawned replacement adopts the
    // endpoint, restores from the step-4 checkpoint, and finishes.
    let plan = nanompi::FaultPlan::new(1).kill(2, 6);
    let (faulted, _) = nanompi::run_with_faults(RANKS, Some(plan), |comm| {
        let victim = comm.rank() == 2;
        let worker = std::thread::current().id();
        let (snap, outcome) =
            campaign_snapshot_mode(comm, &fault_dir.join("_0"), RecoveryMode::HotSpare);
        assert!(
            matches!(outcome.end, CampaignEnd::Completed),
            "campaign did not complete"
        );
        assert!(!outcome.recoveries.is_empty());
        if victim {
            assert_ne!(
                outcome.finished_by, worker,
                "victim's own thread finished the campaign — it was revived, not replaced"
            );
            assert!(
                outcome.recoveries.iter().any(|ev| ev.hot_spare),
                "victim recorded no hot-spare hand-off: {:?}",
                outcome.recoveries
            );
        } else {
            assert_eq!(
                outcome.finished_by, worker,
                "survivor lost its campaign to a spare thread"
            );
            assert!(
                outcome.recoveries.iter().all(|ev| !ev.hot_spare),
                "survivor recorded a hot-spare event: {:?}",
                outcome.recoveries
            );
        }
        // Post-campaign collectives still work from the original worker
        // thread (the victim readopted its endpoint from the spare).
        let total = comm.allreduce_sum(1.0).unwrap();
        assert_eq!(total, RANKS as f64);
        snap
    });

    for rank in 0..RANKS {
        let a = clean[rank].as_ref().expect("clean rank ok");
        let b = faulted[rank].as_ref().expect("faulted rank ok");
        assert_eq!(a.0, STEPS, "clean run did not finish");
        assert_eq!(b.0, STEPS, "hot-spare run did not finish");
        assert_eq!(
            a.1, b.1,
            "rank {rank}: particles differ after hot-spare recovery"
        );
        assert_eq!(a.2, b.2, "rank {rank}: ex fields differ");
        assert_eq!(a.3, b.3, "rank {rank}: ey fields differ");
    }

    // The hand-off was logged on disk.
    let log = fault_dir.join("_0").join("recovery_r0002.log");
    let contents = std::fs::read_to_string(&log).expect("recovery log written");
    assert!(
        contents.contains("action=hot_spare"),
        "log has no hand-off record: {contents}"
    );
    assert!(
        contents.contains("hot_spare=1"),
        "no spare restore: {contents}"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}

#[test]
fn exhausted_recovery_budget_degrades_gracefully() {
    let dir = temp_dir("recovery_degrade");
    // Three kills, budget of two: the third fault must end the campaign
    // with a partial dump on every rank, not a panic or a hang.
    let plan = nanompi::FaultPlan::new(1).kill(1, 3).kill(1, 5).kill(1, 7);
    let (results, _) = nanompi::run_with_faults(2, Some(plan), |comm| {
        let mut sim = DistributedSim::new(
            DomainSpec::periodic((4, 4, 4), (0.25, 0.25, 0.25), 0.1, 2),
            comm.rank(),
            1,
        );
        let si = sim.add_species(Species::new("e", -1.0, 1.0));
        sim.load_uniform(si, 3, 1.0, 8, Momentum::thermal(0.08));
        let cfg = CampaignConfig::new(20, 2, &dir)
            .with_op_timeout(Duration::from_millis(300))
            .with_max_recoveries(2);
        let (_, outcome) = run_campaign(comm, sim, &cfg).unwrap();
        outcome
    });
    for r in &results {
        let outcome = r.as_ref().expect("rank completed without panic");
        match &outcome.end {
            CampaignEnd::Degraded { partial_dump, .. } => {
                assert!(
                    partial_dump.exists(),
                    "partial dump missing: {partial_dump:?}"
                );
            }
            CampaignEnd::Completed => panic!("campaign completed despite exhausted budget"),
        }
        assert_eq!(outcome.recoveries.len(), 2, "wrong recovery count");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
