//! Cross-domain particle migration (VPIC's `boundary_p`).
//!
//! A particle that leaves its domain mid-move arrives here with its
//! unfinished [`Mover`] (remaining half-displacement). The sender rewrites
//! the particle's voxel into the receiver's coordinate frame (all local
//! grids share the same dims), ships it, and the receiver *continues the
//! same move* with `move_p_local`, depositing the remaining current
//! segments locally — so charge conservation holds exactly across domain
//! boundaries. Multi-hop moves (corner crossings) are handled by repeated
//! rounds terminated with a global reduction.

use nanompi::{Comm, CommError, Wire, WireReader};
use vpic_core::accumulator::AccumulatorArray;
use vpic_core::grid::Grid;
use vpic_core::particle::{Mover, Particle};
use vpic_core::push::{move_p_local, Exile, MoveOutcome};
use vpic_core::species::Species;

const TAG_MIGRATE: u64 = 0x9000;

/// A particle in flight between domains.
#[derive(Clone, Copy, Debug)]
pub struct Migrant {
    pub p: Particle,
    pub m: Mover,
}

// Bit-exact wire layout so a migration over the socket transport lands on
// the same particle bits as the in-process transport. Floats travel as
// bit-patterns (see `nanompi::Wire`); field order mirrors the structs.
impl Wire for Migrant {
    fn wire_put(&self, out: &mut Vec<u8>) {
        self.p.dx.wire_put(out);
        self.p.dy.wire_put(out);
        self.p.dz.wire_put(out);
        self.p.i.wire_put(out);
        self.p.ux.wire_put(out);
        self.p.uy.wire_put(out);
        self.p.uz.wire_put(out);
        self.p.w.wire_put(out);
        self.m.dispx.wire_put(out);
        self.m.dispy.wire_put(out);
        self.m.dispz.wire_put(out);
        self.m.idx.wire_put(out);
    }
    fn wire_get(r: &mut WireReader<'_>) -> Option<Self> {
        Some(Migrant {
            p: Particle {
                dx: f32::wire_get(r)?,
                dy: f32::wire_get(r)?,
                dz: f32::wire_get(r)?,
                i: u32::wire_get(r)?,
                ux: f32::wire_get(r)?,
                uy: f32::wire_get(r)?,
                uz: f32::wire_get(r)?,
                w: f32::wire_get(r)?,
            },
            m: Mover {
                dispx: f32::wire_get(r)?,
                dispy: f32::wire_get(r)?,
                dispz: f32::wire_get(r)?,
                idx: u32::wire_get(r)?,
            },
        })
    }
}

/// Rewrite a boundary particle from the sender's frame (sitting exactly on
/// exit face `face`) into the receiver's frame (entering through the
/// opposite face). Assumes identical local grid dims on both sides.
pub fn transform_to_receiver(p: &mut Particle, face: usize, g: &Grid) {
    let axis = face % 3;
    let (i, j, k) = g.voxel_coords(p.i as usize);
    let mut c = [i, j, k];
    let n = [g.nx, g.ny, g.nz][axis];
    if face >= 3 {
        c[axis] = 1;
        p.set_offset(axis, -1.0);
    } else {
        c[axis] = n;
        p.set_offset(axis, 1.0);
    }
    p.i = g.voxel(c[0], c[1], c[2]) as u32;
}

/// Ship this species' exiles, receive inbound migrants, continue their
/// moves (depositing into `acc`), and iterate until no rank has traffic.
/// Returns the number of particles this rank sent (all rounds).
///
/// `tag_base` must differ per species within one step.
#[allow(clippy::too_many_arguments)]
pub fn migrate_species(
    comm: &mut Comm,
    neighbors: &[Option<usize>; 6],
    g: &Grid,
    qsp: f32,
    sp: &mut Species,
    acc: &mut AccumulatorArray,
    exiles: Vec<Exile>,
    tag_base: u64,
) -> Result<u64, CommError> {
    // Build initial outgoing sets and delete the shipped particles.
    let mut outgoing: [Vec<Migrant>; 6] = Default::default();
    for ex in &exiles {
        let mut p = sp.get(ex.idx as usize);
        transform_to_receiver(&mut p, ex.face, g);
        debug_assert!(neighbors[ex.face].is_some(), "exile through a wall face");
        outgoing[ex.face].push(Migrant { p, m: ex.mover });
    }
    let mut idxs: Vec<u32> = exiles.iter().map(|e| e.idx).collect();
    idxs.sort_unstable_by(|a, b| b.cmp(a));
    for idx in idxs {
        sp.swap_remove(idx as usize);
    }

    let mut sent_total = 0u64;
    loop {
        let pending: u64 = outgoing.iter().map(|v| v.len() as u64).sum();
        if comm.allreduce_sum_u64(pending)? == 0 {
            break;
        }
        sent_total += pending;
        // Send (empty vectors too, so receives always match).
        for face in 0..6 {
            if let Some(nb) = neighbors[face] {
                let batch = std::mem::take(&mut outgoing[face]);
                comm.send_vec(nb, TAG_MIGRATE + tag_base * 8 + face as u64, batch)?;
            }
        }
        // Receive from every neighbor face; a migrant arriving through my
        // face f was sent through the sender's opposite face.
        for (face, nb) in neighbors.iter().enumerate() {
            if let Some(nb) = *nb {
                let sender_face = (face + 3) % 6;
                let batch: Vec<Migrant> =
                    comm.recv(nb, TAG_MIGRATE + tag_base * 8 + sender_face as u64)?;
                for mut mig in batch {
                    let mut pm = mig.m;
                    match move_p_local(&mut mig.p, &mut pm, acc, g, qsp) {
                        MoveOutcome::Done => sp.push(mig.p),
                        MoveOutcome::Absorbed => {}
                        MoveOutcome::Exit { face: out_face } => {
                            transform_to_receiver(&mut mig.p, out_face, g);
                            outgoing[out_face].push(Migrant { p: mig.p, m: pm });
                        }
                    }
                }
            }
        }
    }
    Ok(sent_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::grid::ParticleBc;

    fn migrate_grid() -> Grid {
        Grid::new(
            (4, 2, 2),
            (1.0, 1.0, 1.0),
            0.1,
            [
                ParticleBc::Migrate,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
                ParticleBc::Migrate,
                ParticleBc::Periodic,
                ParticleBc::Periodic,
            ],
        )
    }

    #[test]
    fn migrant_wire_round_trip_is_bit_exact() {
        let m = Migrant {
            p: Particle {
                dx: -0.25,
                dy: f32::from_bits(0x7fc0_0001), // NaN payload survives
                dz: -0.0,
                i: 42,
                ux: 1.0e-38,
                uy: -3.5,
                uz: 0.125,
                w: 2.0,
            },
            m: Mover {
                dispx: 0.5,
                dispy: -0.5,
                dispz: 0.0,
                idx: 7,
            },
        };
        let mut buf = Vec::new();
        m.wire_put(&mut buf);
        let mut r = WireReader::new(&buf);
        let got = Migrant::wire_get(&mut r).unwrap();
        assert!(r.done());
        assert_eq!(got.p.dx.to_bits(), m.p.dx.to_bits());
        assert_eq!(got.p.dy.to_bits(), m.p.dy.to_bits());
        assert_eq!(got.p.dz.to_bits(), m.p.dz.to_bits());
        assert_eq!(got.p.i, m.p.i);
        assert_eq!(got.p.ux.to_bits(), m.p.ux.to_bits());
        assert_eq!(got.p.w.to_bits(), m.p.w.to_bits());
        assert_eq!(got.m.dispx.to_bits(), m.m.dispx.to_bits());
        assert_eq!(got.m.idx, m.m.idx);
        // Truncated payloads refuse to decode.
        assert!(Migrant::wire_get(&mut WireReader::new(&buf[..buf.len() - 1])).is_none());
    }

    #[test]
    fn transform_flips_face_coordinates() {
        let g = migrate_grid();
        let mut p = Particle {
            i: g.voxel(4, 1, 2) as u32,
            dx: 1.0,
            dy: 0.3,
            ..Default::default()
        };
        transform_to_receiver(&mut p, 3, &g); // exits +x
        assert_eq!(p.i, g.voxel(1, 1, 2) as u32);
        assert_eq!(p.dx, -1.0);
        assert_eq!(p.dy, 0.3);

        let mut p = Particle {
            i: g.voxel(1, 2, 1) as u32,
            dx: -1.0,
            ..Default::default()
        };
        transform_to_receiver(&mut p, 0, &g); // exits −x
        assert_eq!(p.i, g.voxel(4, 2, 1) as u32);
        assert_eq!(p.dx, 1.0);
    }

    #[test]
    fn two_rank_roundtrip_conserves_particles() {
        use nanompi::run_expect;
        let (results, _) = run_expect(2, |comm| {
            let g = migrate_grid();
            let other = 1 - comm.rank();
            let neighbors = [Some(other), None, None, Some(other), None, None];
            let mut sp = Species::new("e", -1.0, 1.0);
            let mut acc = AccumulatorArray::new(&g);
            // Rank 0 owns one particle that must hop to rank 1.
            let exiles = if comm.rank() == 0 {
                sp.push(Particle {
                    i: g.voxel(4, 1, 1) as u32,
                    dx: 1.0,
                    ux: 1.0,
                    w: 1.0,
                    ..Default::default()
                });
                vec![Exile {
                    idx: 0,
                    face: 3,
                    mover: Mover {
                        dispx: 0.2,
                        dispy: 0.0,
                        dispz: 0.0,
                        idx: 0,
                    },
                }]
            } else {
                Vec::new()
            };
            let sent =
                migrate_species(comm, &neighbors, &g, -1.0, &mut sp, &mut acc, exiles, 0).unwrap();
            (sp.len(), sent)
        });
        assert_eq!(results[0], (0, 1));
        assert_eq!(results[1].0, 1);
        assert_eq!(results[1].1, 0);
    }

    #[test]
    fn multi_hop_migration_terminates() {
        use nanompi::run_expect;
        // 4 ranks in a periodic x-ring; a very fast particle with a huge
        // remaining displacement hops through several domains in one step.
        use nanompi::CartTopology;
        let topo = CartTopology::new([4, 1, 1], [true, false, false]);
        let (results, _) = run_expect(4, |comm| {
            let g = migrate_grid();
            let neighbors = [
                topo.neighbor(comm.rank(), 0, -1),
                None,
                None,
                topo.neighbor(comm.rank(), 0, 1),
                None,
                None,
            ];
            let mut sp = Species::new("e", -1.0, 1.0);
            let mut acc = AccumulatorArray::new(&g);
            let exiles = if comm.rank() == 0 {
                sp.push(Particle {
                    i: g.voxel(4, 1, 1) as u32,
                    dx: 1.0,
                    ux: 10.0,
                    w: 1.0,
                    ..Default::default()
                });
                // Remaining half-displacement of 3.0 offset units = 6 full
                // offsets = 3 cells: it should stop 3 cells into rank 1's
                // 4-cell domain (still needing a rank-1→1 hop only).
                vec![Exile {
                    idx: 0,
                    face: 3,
                    mover: Mover {
                        dispx: 3.0,
                        dispy: 0.0,
                        dispz: 0.0,
                        idx: 0,
                    },
                }]
            } else {
                Vec::new()
            };
            migrate_species(comm, &neighbors, &g, -1.0, &mut sp, &mut acc, exiles, 0).unwrap();
            sp.len()
        });
        // Exactly one rank holds the particle afterwards: 3 cells past the
        // rank-0/1 boundary lands inside rank 1's 4-cell domain.
        assert_eq!(results.iter().sum::<usize>(), 1);
        assert_eq!(results[1], 1);
    }
}
