//! # vpic-parallel
//!
//! Domain-decomposed distributed PIC on top of [`nanompi`] — the
//! reproduction of VPIC's MPI layer from the SC'08 Roadrunner paper.
//! A global brick of cells is split uniformly over a Cartesian rank
//! topology; each rank runs the `vpic-core` engine on its sub-domain and
//! this crate supplies the three things that stitch domains together:
//!
//! * [`exchange::GhostExchanger`] — field ghost-plane exchange after every
//!   Maxwell sub-update and current folding after deposition;
//! * [`migrate`] — particles that leave a domain mid-move are shipped with
//!   their unfinished mover and *continue the same move* on the receiving
//!   rank, so charge conservation is exact across boundaries;
//! * [`dsim::DistributedSim`] — the per-rank driver with phase timings,
//!   global reductions and reproducible per-rank particle loading;
//! * [`campaign`] — the fault-tolerant campaign runtime: periodic
//!   CRC-protected (optionally compressed and write-throttled)
//!   checkpoints on a fixed or Young/Daly-auto schedule, global health
//!   checks, and automatic recovery — whole-world rollback or hot-spare
//!   rank replacement — with bounded retries and graceful degradation;
//! * [`sweepjob`] — distributed campaigns as WAL-journaled sweep jobs,
//!   sharing the reflectivity-sweep service's job-queue state machine
//!   (leases, retry/backoff, quarantine, exactly-once results).

pub mod campaign;
pub mod dcheckpoint;
pub mod decomposition;
pub mod dsim;
pub mod exchange;
pub mod migrate;
pub mod sweepjob;

pub use campaign::{
    rejoin_campaign, run_campaign, run_campaign_with, CampaignConfig, CampaignDrive, CampaignEnd,
    CampaignError, CampaignOutcome, CheckpointPolicy, RecoveryEvent, RecoveryMode,
};
pub use dcheckpoint::{
    dump_rank_bytes, load_rank, load_rank_from_path, save_rank, save_rank_to_path, save_rank_with,
    spec_fingerprint, write_bytes_atomic,
};
pub use decomposition::DomainSpec;
pub use dsim::{DistTimings, DistributedSim};
pub use exchange::GhostExchanger;
pub use migrate::{migrate_species, transform_to_receiver, Migrant};
pub use sweepjob::{launch_world, JobJournal, JobResult, JobVerdict, SweepJobError};
