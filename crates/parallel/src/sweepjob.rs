//! Distributed campaigns as sweep jobs.
//!
//! The LPI sweep service (`vpic-lpi`'s `sweep` module) drives serial
//! campaigns through a WAL-backed job queue. Multi-rank campaigns are
//! the other worker type that service will eventually schedule, and
//! they must speak the *same* state machine: `Defined → Leased →
//! Running → Done | Failed | Quarantined`, every transition journaled
//! before it is acted on, orphaned leases released uncharged, results
//! folded exactly once from `Done` records.
//!
//! [`JobJournal`] is that adapter: it owns one `vpic_core::journal`
//! WAL plus the replayed [`JobQueue`], and [`JobJournal::run_campaign_job`]
//! wraps one [`run_campaign`](crate::campaign::run_campaign) attempt in
//! the full journaled lifecycle. A completed campaign lands as a `Done`
//! record carrying a fixed-width [`JobResult`] payload; a degraded one
//! (recovery budget exhausted) is a charged failure that retries with
//! the caller's [`RetryPolicy`] until quarantine — with the flight
//! recorder's path in the recorded cause, exactly like the serial
//! sweep's poison jobs.
//!
//! Unlike the serial sweep, a distributed attempt holds its lease for
//! the whole campaign (the multi-rank driver does not yet expose a
//! per-checkpoint hook), so `lease_ms` must cover one full attempt;
//! heartbeat `Progress` records can slot in once it does.

use std::path::Path;

use nanompi::{SocketAddrSpec, TransportKind};
use vpic_core::journal::{Journal, JournalError, ReplayReport};
use vpic_core::queue::{JobEvent, JobQueue, JobState, QueueError, RetryPolicy};

use crate::campaign::{run_campaign, CampaignConfig, CampaignEnd, CampaignError, CampaignOutcome};
use crate::dsim::DistributedSim;

/// Launch one `ranks`-wide campaign world over `transport` and distill it
/// to rank 0's outcome — exactly the closure shape
/// [`JobJournal::run_campaign_job`] wants for its `drive` argument. This
/// is how the sweep scheduler honours the `transport = local|socket` deck
/// global: a `Local` world runs over in-process channels, a `Socket`
/// world runs the full wire path (framing, handshakes, heartbeats) over
/// Unix-domain sockets rendezvousing in `sock_dir`.
pub fn launch_world<F>(
    transport: TransportKind,
    ranks: usize,
    sock_dir: &Path,
    cfg: &CampaignConfig,
    build: F,
) -> Result<CampaignOutcome, CampaignError>
where
    F: Fn(usize) -> DistributedSim + Sync,
{
    let worker =
        |comm: &mut nanompi::Comm| run_campaign(comm, build(comm.rank()), cfg).map(|(_, out)| out);
    let results = match transport {
        TransportKind::Local => nanompi::run(ranks, worker).0,
        TransportKind::Socket => {
            std::fs::create_dir_all(sock_dir)?;
            nanompi::run_socket_world(ranks, SocketAddrSpec::unix(sock_dir), None, worker).0
        }
    };
    // Rank 0 reports for the world (campaign ends are collective), but a
    // panic anywhere is a launch failure, not an outcome.
    let mut first = None;
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Err(p) => {
                return Err(CampaignError::Launch(format!(
                    "rank {rank} panicked: {}",
                    p.message
                )))
            }
            Ok(out) if rank == 0 => first = Some(out),
            Ok(_) => {}
        }
    }
    first.expect("world has at least one rank")
}

/// Fixed-width `Done` payload for a distributed campaign job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobResult {
    /// Total sim steps executed, including replayed ones.
    pub steps_run: u64,
    /// Rollback/hot-spare recoveries survived on the way.
    pub recoveries: u64,
    /// Largest `max/mean` particle-count imbalance observed.
    pub peak_imbalance: f64,
}

impl JobResult {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.steps_run.to_le_bytes());
        out.extend_from_slice(&self.recoveries.to_le_bytes());
        out.extend_from_slice(&self.peak_imbalance.to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<JobResult, String> {
        if bytes.len() != 24 {
            return Err(format!(
                "campaign job payload is {} bytes, expected 24",
                bytes.len()
            ));
        }
        let u = |r: std::ops::Range<usize>| u64::from_le_bytes(bytes[r].try_into().unwrap());
        Ok(JobResult {
            steps_run: u(0..8),
            recoveries: u(8..16),
            peak_imbalance: f64::from_bits(u(16..24)),
        })
    }
}

/// What became of one journaled campaign attempt.
#[derive(Debug, PartialEq)]
pub enum JobVerdict {
    /// Campaign completed; its `Done` record is durable.
    Done(JobResult),
    /// Attempt failed (degradation or infrastructure error); the job
    /// retries once the logical clock reaches `ready_at_ms`.
    Retry { attempt: u32, ready_at_ms: u64 },
    /// Poisoned after `max_attempts` failures; never retried again.
    Quarantined { attempt: u32 },
}

/// Typed adapter failure (journal or state-machine, not physics).
#[derive(Debug)]
pub enum SweepJobError {
    Journal(JournalError),
    Queue(QueueError),
    /// The job is not in a state this call is legal from.
    NotReady {
        id: u64,
        state: &'static str,
    },
}

impl std::fmt::Display for SweepJobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepJobError::Journal(e) => write!(f, "sweep job journal: {e}"),
            SweepJobError::Queue(e) => write!(f, "sweep job queue: {e}"),
            SweepJobError::NotReady { id, state } => {
                write!(f, "job {id} is {state}, not ready to run")
            }
        }
    }
}

impl std::error::Error for SweepJobError {}

impl From<JournalError> for SweepJobError {
    fn from(e: JournalError) -> Self {
        SweepJobError::Journal(e)
    }
}

impl From<QueueError> for SweepJobError {
    fn from(e: QueueError) -> Self {
        SweepJobError::Queue(e)
    }
}

/// One WAL plus its replayed queue: the durable half of a sweep worker
/// that runs distributed campaigns.
pub struct JobJournal {
    journal: Journal,
    queue: JobQueue,
    replay: ReplayReport,
}

impl JobJournal {
    /// Open (or create) the WAL at `path` and replay it. A record that
    /// fails to decode or apply is a typed error — never a silently
    /// dropped transition.
    pub fn open(path: &Path) -> Result<JobJournal, SweepJobError> {
        let mut queue = JobQueue::new();
        let mut defect: Option<SweepJobError> = None;
        let (journal, replay) = Journal::open(path, |payload| {
            if defect.is_some() {
                return;
            }
            match JobEvent::decode(payload) {
                Ok(ev) => {
                    if let Err(e) = queue.apply(&ev) {
                        defect = Some(SweepJobError::Queue(e));
                    }
                }
                Err(e) => defect = Some(SweepJobError::Queue(e)),
            }
        })?;
        if let Some(d) = defect {
            return Err(d);
        }
        Ok(JobJournal {
            journal,
            queue,
            replay,
        })
    }

    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    pub fn replay(&self) -> &ReplayReport {
        &self.replay
    }

    /// Journal-then-apply: the WAL always leads the in-memory state.
    fn record(&mut self, ev: &JobEvent) -> Result<(), SweepJobError> {
        self.journal.append(&ev.encode())?;
        self.queue.apply(ev)?;
        Ok(())
    }

    /// Define (or re-validate) a job. Idempotent; a fingerprint clash
    /// with the journaled spec is the queue's typed error.
    pub fn define(&mut self, id: u64, fingerprint: u64) -> Result<(), SweepJobError> {
        self.record(&JobEvent::Defined { id, fingerprint })
    }

    /// Release every lease a dead predecessor left behind, uncharged,
    /// journaling each release so later replays stay legal.
    pub fn release_orphans(&mut self) -> Result<Vec<u64>, SweepJobError> {
        let orphans: Vec<u64> = self
            .queue
            .jobs()
            .filter(|j| matches!(j.state, JobState::Leased { .. } | JobState::Running { .. }))
            .map(|j| j.id)
            .collect();
        for &id in &orphans {
            self.record(&JobEvent::Released { id })?;
        }
        Ok(orphans)
    }

    /// Run one journaled attempt at job `id`: `Leased` and `Started`
    /// are durable before `drive` executes the campaign, and exactly
    /// one of `Done` / `Failed` / `Quarantined` is durable after.
    ///
    /// `drive` is the world launch (typically `nanompi::run` around
    /// [`run_campaign`](crate::campaign::run_campaign)) distilled to
    /// the designated result rank's outcome. Both a `Degraded` end and
    /// a [`CampaignError`] are *charged* failures — infrastructure
    /// trouble retries with backoff like physics trouble does.
    pub fn run_campaign_job(
        &mut self,
        id: u64,
        clock_ms: u64,
        lease_ms: u64,
        retry: &RetryPolicy,
        drive: impl FnOnce() -> Result<CampaignOutcome, CampaignError>,
    ) -> Result<JobVerdict, SweepJobError> {
        let state = match self.queue.job(id) {
            None => {
                return Err(SweepJobError::NotReady {
                    id,
                    state: "undefined",
                })
            }
            Some(j) => j.state.name(),
        };
        if state != "pending" && state != "failed" {
            return Err(SweepJobError::NotReady { id, state });
        }
        let attempt = self.queue.job(id).expect("job checked above").attempts + 1;
        self.record(&JobEvent::Leased {
            id,
            attempt,
            deadline_ms: clock_ms + lease_ms,
        })?;
        self.record(&JobEvent::Started { id, attempt })?;

        let failure = match drive() {
            Ok(out) => match out.end {
                CampaignEnd::Completed => {
                    let result = JobResult {
                        steps_run: out.steps_run,
                        recoveries: out.recoveries.len() as u64,
                        peak_imbalance: out.peak_imbalance,
                    };
                    self.record(&JobEvent::Done {
                        id,
                        result: result.encode(),
                    })?;
                    return Ok(JobVerdict::Done(result));
                }
                CampaignEnd::Degraded {
                    at_step,
                    flight_recorder,
                    ..
                } => format!(
                    "campaign degraded at step {at_step} (attempt {attempt}); \
                     flight recorder {}",
                    flight_recorder.display()
                ),
            },
            Err(e) => format!("campaign error (attempt {attempt}): {e}"),
        };
        // The queue's canonical retry protocol: every failure is a
        // charged `Failed` record; quarantine is a terminal marker on
        // top of the last one.
        let ready_at_ms = clock_ms + retry.backoff_ms(id, attempt);
        self.record(&JobEvent::Failed {
            id,
            attempt,
            ready_at_ms,
            cause: failure.clone(),
        })?;
        if attempt >= retry.max_attempts {
            self.record(&JobEvent::Quarantined { id, cause: failure })?;
            Ok(JobVerdict::Quarantined { attempt })
        } else {
            Ok(JobVerdict::Retry {
                attempt,
                ready_at_ms,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::decomposition::DomainSpec;
    use crate::dsim::DistributedSim;
    use std::path::PathBuf;
    use vpic_core::maxwellian::Momentum;
    use vpic_core::species::Species;

    const RANKS: usize = 2;
    const STEPS: u64 = 8;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vpic_sweepjob_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build_sim(rank: usize) -> DistributedSim {
        let spec = DomainSpec::periodic((8, 2, 2), (0.25, 0.25, 0.25), 0.1, RANKS);
        let mut sim = DistributedSim::new(spec, rank, 1);
        let si = sim.add_species(Species::new("e", -1.0, 1.0));
        sim.load_uniform(si, 7, 1.0, 4, Momentum::thermal(0.05));
        sim
    }

    fn drive_world(dir: &Path) -> Result<CampaignOutcome, CampaignError> {
        let cfg = CampaignConfig::new(STEPS, 4, dir);
        let (results, _traffic) = nanompi::run(RANKS, |comm| {
            run_campaign(comm, build_sim(comm.rank()), &cfg).map(|(_, out)| out)
        });
        // Rank 0 reports for the world (ends are collective).
        results
            .into_iter()
            .next()
            .unwrap()
            .expect("rank 0 panicked")
    }

    fn degraded_outcome() -> CampaignOutcome {
        CampaignOutcome {
            rank: 0,
            end: CampaignEnd::Degraded {
                at_step: 3,
                partial_dump: PathBuf::from("/tmp/partial.vpic"),
                flight_recorder: PathBuf::from("/tmp/flight_r0000.json"),
            },
            steps_run: 3,
            recoveries: Vec::new(),
            heals: Vec::new(),
            peak_imbalance: 1.0,
            effective_interval: 4,
            finished_by: std::thread::current().id(),
        }
    }

    #[test]
    fn distributed_campaign_round_trips_through_the_wal() {
        let dir = tmp("roundtrip");
        let wal = dir.join("jobs.wal");
        let mut jj = JobJournal::open(&wal).unwrap();
        jj.define(7, 0xF00D).unwrap();
        let verdict = jj
            .run_campaign_job(7, 0, 60_000, &RetryPolicy::default(), || {
                drive_world(&dir.join("ckpt"))
            })
            .unwrap();
        let JobVerdict::Done(result) = verdict else {
            panic!("expected Done, got {verdict:?}")
        };
        assert_eq!(result.steps_run, STEPS);
        assert_eq!(result.recoveries, 0);

        // A fresh incarnation replays to the same settled state and can
        // decode the Done payload — exactly-once aggregation material.
        let jj2 = JobJournal::open(&wal).unwrap();
        assert!(jj2.replay().records >= 4);
        assert!(!jj2.replay().torn_tail);
        let job = jj2.queue().job(7).unwrap();
        assert_eq!(job.state, JobState::Done);
        assert_eq!(
            JobResult::decode(job.result.as_ref().unwrap()).unwrap(),
            result
        );
        assert!(jj2.queue().is_settled());
    }

    #[test]
    fn socket_world_job_round_trips_through_the_wal() {
        let dir = tmp("socket_job");
        let wal = dir.join("jobs.wal");
        let mut jj = JobJournal::open(&wal).unwrap();
        jj.define(11, 0x50C4).unwrap();
        let verdict = jj
            .run_campaign_job(11, 0, 60_000, &RetryPolicy::default(), || {
                let cfg = CampaignConfig::new(STEPS, 4, dir.join("ckpt"));
                launch_world(
                    TransportKind::Socket,
                    RANKS,
                    &dir.join("sock"),
                    &cfg,
                    build_sim,
                )
            })
            .unwrap();
        let JobVerdict::Done(result) = verdict else {
            panic!("expected Done, got {verdict:?}")
        };
        assert_eq!(result.steps_run, STEPS);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_campaign_retries_with_backoff_then_quarantines() {
        let dir = tmp("degrade");
        let wal = dir.join("jobs.wal");
        let retry = RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
            jitter_seed: 9,
        };
        let mut jj = JobJournal::open(&wal).unwrap();
        jj.define(0, 0xBEEF).unwrap();

        let v1 = jj
            .run_campaign_job(0, 0, 1_000, &retry, || Ok(degraded_outcome()))
            .unwrap();
        let JobVerdict::Retry {
            attempt,
            ready_at_ms,
        } = v1
        else {
            panic!("expected Retry, got {v1:?}")
        };
        assert_eq!(attempt, 1);
        assert!(ready_at_ms >= 100, "backoff must gate the retry");

        let v2 = jj
            .run_campaign_job(0, ready_at_ms, 1_000, &retry, || Ok(degraded_outcome()))
            .unwrap();
        assert_eq!(v2, JobVerdict::Quarantined { attempt: 2 });

        let jj2 = JobJournal::open(&wal).unwrap();
        let job = jj2.queue().job(0).unwrap();
        assert_eq!(job.state, JobState::Quarantined);
        assert_eq!(job.attempts, 2);
        assert!(
            job.last_cause
                .as_deref()
                .unwrap()
                .contains("flight_r0000.json"),
            "quarantine cause must point at the flight recorder"
        );
        assert!(jj2.queue().is_settled());
    }

    #[test]
    fn orphaned_lease_is_released_uncharged_on_reopen() {
        let dir = tmp("orphan");
        let wal = dir.join("jobs.wal");
        {
            let mut jj = JobJournal::open(&wal).unwrap();
            jj.define(3, 0xCAFE).unwrap();
            // Simulate a worker dying between Started and any outcome:
            // journal the lease + start, then drop the journal.
            jj.record(&JobEvent::Leased {
                id: 3,
                attempt: 1,
                deadline_ms: 5_000,
            })
            .unwrap();
            jj.record(&JobEvent::Started { id: 3, attempt: 1 }).unwrap();
        }
        let mut jj = JobJournal::open(&wal).unwrap();
        assert_eq!(jj.release_orphans().unwrap(), vec![3]);
        let job = jj.queue().job(3).unwrap();
        assert_eq!(job.state, JobState::Pending);
        assert_eq!(job.attempts, 0, "orphan release must not charge an attempt");
        // And a third incarnation replays the Released record legally.
        let jj3 = JobJournal::open(&wal).unwrap();
        assert_eq!(jj3.queue().job(3).unwrap().state, JobState::Pending);
    }
}
