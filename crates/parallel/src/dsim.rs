//! The distributed (one-rank's-view) simulation driver: VPIC's main loop
//! with ghost exchange and particle migration interleaved.

use crate::decomposition::DomainSpec;
use crate::exchange::GhostExchanger;
use crate::migrate::migrate_species;
use nanompi::{Comm, CommError};
use std::time::Instant;
use vpic_core::accumulator::AccumulatorSet;
use vpic_core::deposit::deposit_rho;
use vpic_core::field::FieldArray;
use vpic_core::field_solver::{
    advance_b, advance_e, apply_marder_b, apply_marder_e, bcs_of, compute_div_b_err,
    compute_div_e_err, mirror_div_b_err, mirror_div_e_err, sync_b, sync_e, sync_j, sync_rho,
};
use vpic_core::grid::Grid;
use vpic_core::interpolator::InterpolatorArray;
use vpic_core::maxwellian::{load_uniform, Momentum};
use vpic_core::push::{advance_p_tallied, PushKernel};
use vpic_core::rng::Rng;
use vpic_core::sentinel::{self, HealthSample, SentinelConfig, SimConfig};
use vpic_core::species::Species;
use vpic_core::sponge::Sponge;
use vpic_core::store::Layout;
use vpic_core::Particle;

/// Per-phase wall time for a distributed rank.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistTimings {
    pub sort: f64,
    pub interpolate: f64,
    pub push: f64,
    pub migrate: f64,
    pub current: f64,
    pub field: f64,
    pub exchange: f64,
    /// Diagnostics observation (snapshot publication off this rank's
    /// hot path; see `step_observed`).
    pub diag: f64,
    pub steps: u64,
    pub particle_steps: u64,
}

impl DistTimings {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.sort
            + self.interpolate
            + self.push
            + self.migrate
            + self.current
            + self.field
            + self.exchange
            + self.diag
    }

    /// Communication share (migration rounds + ghost exchange).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            (self.migrate + self.exchange) / t
        } else {
            0.0
        }
    }
}

/// One rank of a distributed PIC run. Construct inside a `nanompi::run`
/// closure and drive with [`DistributedSim::step`].
pub struct DistributedSim {
    pub spec: DomainSpec,
    pub rank: usize,
    pub grid: Grid,
    pub fields: FieldArray,
    pub interp: InterpolatorArray,
    pub species: Vec<Species>,
    pub accumulators: AccumulatorSet,
    pub exchanger: GhostExchanger,
    pub step_count: u64,
    /// Particles shipped to neighbors (all steps, all rounds).
    pub migrated: u64,
    pub timings: DistTimings,
    /// Cleaning cadence + sentinel thresholds (checkpoint-portable; every
    /// rank must hold the same value for the collectives to agree).
    pub config: SimConfig,
    /// Scratch for divergence-error fields.
    scratch: Vec<f32>,
    /// Open-boundary damping layers evaluated in *global* x coordinates
    /// (the deck's sponge spans the full domain, not each rank's slab).
    /// Every rank must hold the same value. Not checkpointed — the runner
    /// re-seats it after a rollback, like the layout/kernel knobs.
    pub sponge: Option<Sponge>,
    /// Particle storage layout applied to every species on this rank.
    layout: Layout,
    /// Which AoSoA push body runs on this rank (bit-identical either
    /// way, so ranks may even disagree without diverging).
    kernel: PushKernel,
}

impl DistributedSim {
    /// Build rank `rank`'s domain with `n_pipelines` push pipelines.
    pub fn new(spec: DomainSpec, rank: usize, n_pipelines: usize) -> Self {
        let grid = spec.local_grid(rank);
        let neighbors = spec.neighbors(rank);
        let fields = FieldArray::new(&grid);
        let interp = InterpolatorArray::new(&grid);
        let accumulators = AccumulatorSet::new(&grid, n_pipelines);
        DistributedSim {
            spec,
            rank,
            grid,
            fields,
            interp,
            species: Vec::new(),
            accumulators,
            exchanger: GhostExchanger { neighbors },
            step_count: 0,
            migrated: 0,
            timings: DistTimings::default(),
            config: SimConfig::default(),
            sponge: None,
            scratch: Vec::new(),
            layout: Layout::default(),
            kernel: PushKernel::default(),
        }
    }

    /// Particle storage layout used by every species on this rank.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Switch every species (and future additions) to `layout`. Purely a
    /// storage transform — physics and dump bytes are unaffected, so ranks
    /// may even disagree (they shouldn't, but nothing breaks).
    pub fn set_layout(&mut self, layout: Layout) {
        self.layout = layout;
        for sp in &mut self.species {
            sp.set_layout(layout);
        }
    }

    /// The AoSoA push kernel in use on this rank.
    pub fn kernel(&self) -> PushKernel {
        self.kernel
    }

    /// Select the AoSoA push kernel (see [`PushKernel`]; bit-identical
    /// choices, so this is purely a performance/diagnosis knob).
    pub fn set_kernel(&mut self, kernel: PushKernel) {
        self.kernel = kernel;
    }

    /// Add a species; returns its index.
    pub fn add_species(&mut self, mut sp: Species) -> usize {
        sp.set_layout(self.layout);
        self.species.push(sp);
        self.species.len() - 1
    }

    /// Load a uniform plasma into species `si` with a rank-decorrelated,
    /// reproducible RNG stream.
    pub fn load_uniform(&mut self, si: usize, run_seed: u64, n0: f32, ppc: usize, mom: Momentum) {
        let mut rng = Rng::for_domain(run_seed, self.rank);
        load_uniform(&mut self.species[si], &self.grid, &mut rng, n0, ppc, mom);
    }

    /// Synchronize ghost planes after manual field initialization.
    pub fn synchronize_fields(&mut self, comm: &mut Comm) -> Result<(), CommError> {
        let bcs = bcs_of(&self.grid);
        sync_e(&mut self.fields, &self.grid, bcs);
        sync_b(&mut self.fields, &self.grid, bcs);
        self.exchanger
            .exchange_e(comm, &mut self.fields, &self.grid)?;
        self.exchanger
            .exchange_b(comm, &mut self.fields, &self.grid)?;
        Ok(())
    }

    /// One full distributed step (see `vpic_core::sim` for the phase
    /// ordering; migration happens right after the local push, ghost
    /// exchanges after each field sub-update).
    pub fn step(&mut self, comm: &mut Comm) -> Result<(), CommError> {
        self.step_with(comm, |_, _, _| {})
    }

    /// One step with a drive hook plus a diagnostics observer: the
    /// observer runs after the step completes on this rank's fields and
    /// is charged to `timings.diag` — the distributed analog of
    /// `Simulation::step_with_observed`, so per-rank probe publication
    /// stays out of every physics phase's budget.
    pub fn step_observed(
        &mut self,
        comm: &mut Comm,
        drive: impl FnOnce(&mut FieldArray, &Grid, u64),
        observe: impl FnOnce(&FieldArray, &Grid, &[Species], u64),
    ) -> Result<(), CommError> {
        self.step_with(comm, drive)?;
        let t0 = Instant::now();
        observe(&self.fields, &self.grid, &self.species, self.step_count);
        self.timings.diag += t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// One step with an external current drive hook.
    ///
    /// On `Err` the local state may be mid-step (some phases applied); the
    /// caller must treat it as poisoned and roll back to a checkpoint.
    pub fn step_with(
        &mut self,
        comm: &mut Comm,
        drive: impl FnOnce(&mut FieldArray, &Grid, u64),
    ) -> Result<(), CommError> {
        let g = self.grid.clone();
        let bcs = bcs_of(&g);

        // Per-species cadence controller (fixed or auto-tuned); sorting is
        // rank-local, and the controller's inputs are bit-deterministic,
        // so no collective is needed for ranks to stay in lockstep with
        // their own particles.
        let t0 = Instant::now();
        for sp in &mut self.species {
            if sp.sort_due(self.step_count) {
                sp.sort_on_cadence(&g);
            }
        }
        self.timings.sort += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        self.interp.load(&self.fields, &g);
        self.timings.interpolate += t0.elapsed().as_secs_f64();

        self.accumulators.clear();
        for si in 0..self.species.len() {
            let t0 = Instant::now();
            let sp = &mut self.species[si];
            let coeffs = vpic_core::push::PushCoefficients::new(sp.q, sp.m, &g);
            self.timings.particle_steps += sp.len() as u64;
            let (exiles, tally) = advance_p_tallied(
                sp.store_mut(),
                coeffs,
                &self.interp,
                &mut self.accumulators.arrays,
                &g,
                self.kernel,
            );
            self.timings.push += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let qsp = sp.q;
            self.migrated += migrate_species(
                comm,
                &self.exchanger.neighbors,
                &g,
                qsp,
                sp,
                &mut self.accumulators.arrays[0],
                exiles,
                si as u64,
            )?;
            // After migration, so the controller's length check sees any
            // appended migrants (a length change dirties voxel order).
            self.species[si].note_push_tally(&tally);
            self.timings.migrate += t0.elapsed().as_secs_f64();
        }

        let t0 = Instant::now();
        self.fields.clear_currents();
        self.accumulators.reduce_and_unload(&mut self.fields, &g);
        sync_j(&mut self.fields, &g, bcs);
        self.timings.current += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        self.exchanger.fold_j(comm, &mut self.fields, &g)?;
        self.timings.exchange += t0.elapsed().as_secs_f64();

        drive(&mut self.fields, &g, self.step_count);

        let t0 = Instant::now();
        advance_b(&mut self.fields, &g, 0.5);
        self.timings.field += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        self.exchanger.exchange_b(comm, &mut self.fields, &g)?;
        self.timings.exchange += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        advance_e(&mut self.fields, &g);
        self.timings.field += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        self.exchanger.exchange_e(comm, &mut self.fields, &g)?;
        self.timings.exchange += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        advance_b(&mut self.fields, &g, 0.5);
        self.timings.field += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        self.exchanger.exchange_b(comm, &mut self.fields, &g)?;
        self.timings.exchange += t0.elapsed().as_secs_f64();

        if self.sponge.is_some() {
            let t0 = Instant::now();
            self.apply_sponge(&g);
            self.timings.field += t0.elapsed().as_secs_f64();
        }

        self.step_count += 1;
        self.timings.steps += 1;

        let cfg = self.config;
        if cfg.clean_div_e_interval > 0
            && self
                .step_count
                .is_multiple_of(cfg.clean_div_e_interval as u64)
        {
            self.refresh_rho(comm)?;
            self.marder_clean_e(comm, 1)?;
        }
        if cfg.clean_div_b_interval > 0
            && self
                .step_count
                .is_multiple_of(cfg.clean_div_b_interval as u64)
        {
            self.marder_clean_b(comm, 1)?;
        }
        Ok(())
    }

    /// Damp every local x-plane — ghosts included — by the sponge factor
    /// at its *global* index. A ghost plane's global index lands exactly
    /// on the owning neighbor's live plane, so ghosts pick up the same
    /// damping the neighbor applies and stay bit-consistent across ranks
    /// without an extra exchange. (Runs after the last ghost exchange of
    /// the step; `Sponge::factor` clamps the domain-edge ghosts at 0 and
    /// `global_nx + 1` to full wall strength.)
    fn apply_sponge(&mut self, g: &Grid) {
        let Some(sponge) = self.sponge else { return };
        let global_nx = self.spec.global_cells.0;
        let x_off = self.spec.topo.coords_of(self.rank)[0] * self.spec.local_cells().0;
        let (sx, sy, sz) = g.strides();
        let f = &mut self.fields;
        for i in 0..sx {
            let fac = sponge.factor(x_off + i, global_nx);
            if fac == 1.0 {
                continue;
            }
            for k in 0..sz {
                for j in 0..sy {
                    let v = g.voxel(i, j, k);
                    f.ex[v] *= fac;
                    f.ey[v] *= fac;
                    f.ez[v] *= fac;
                    f.cbx[v] *= fac;
                    f.cby[v] *= fac;
                    f.cbz[v] *= fac;
                }
            }
        }
    }

    /// Deposit the charge density of every species into `fields.rho` with
    /// valid live entries everywhere: local deposit + periodic fold, then a
    /// ghost-plane fold into the owning neighbor on decomposed axes.
    pub fn refresh_rho(&mut self, comm: &mut Comm) -> Result<(), CommError> {
        self.fields.clear_rho();
        for sp in &self.species {
            deposit_rho(&mut self.fields, &self.grid, sp.iter(), sp.q);
        }
        let g = self.grid.clone();
        sync_rho(&mut self.fields, &g, bcs_of(&g));
        self.exchanger.fold_scalar(comm, &mut self.fields.rho, &g)
    }

    /// `passes` distributed Marder passes on `E` (`E += κ∇(∇·E − ρ/ε0)`).
    ///
    /// Requires a fresh [`Self::refresh_rho`]. Each pass refreshes exactly
    /// the ghost planes the serial pass mirrors locally, so the cleaned
    /// field is identical to a single-domain run of the same pass count.
    pub fn marder_clean_e(&mut self, comm: &mut Comm, passes: u32) -> Result<(), CommError> {
        let g = self.grid.clone();
        let bcs = bcs_of(&g);
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut run = |sim: &mut Self, scratch: &mut Vec<f32>| -> Result<(), CommError> {
            for _ in 0..passes {
                sim.exchanger
                    .exchange_e_normal_low(comm, &mut sim.fields, &g)?;
                compute_div_e_err(&sim.fields, &g, scratch);
                mirror_div_e_err(scratch, &g, bcs);
                sim.exchanger.exchange_scalar_high(comm, scratch, &g)?;
                apply_marder_e(&mut sim.fields, &g, scratch);
                sync_e(&mut sim.fields, &g, bcs);
                sim.exchanger.exchange_e(comm, &mut sim.fields, &g)?;
            }
            Ok(())
        };
        let r = run(self, &mut scratch);
        self.scratch = scratch;
        r
    }

    /// `passes` distributed Marder passes on `B` (`cB −= κ∇(∇·cB)`).
    pub fn marder_clean_b(&mut self, comm: &mut Comm, passes: u32) -> Result<(), CommError> {
        let g = self.grid.clone();
        let bcs = bcs_of(&g);
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut run = |sim: &mut Self, scratch: &mut Vec<f32>| -> Result<(), CommError> {
            for _ in 0..passes {
                compute_div_b_err(&sim.fields, &g, scratch);
                mirror_div_b_err(scratch, &g, bcs);
                sim.exchanger.exchange_scalar_low(comm, scratch, &g)?;
                apply_marder_b(&mut sim.fields, &g, scratch);
                sync_b(&mut sim.fields, &g, bcs);
                sim.exchanger.exchange_b(comm, &mut sim.fields, &g)?;
            }
            Ok(())
        };
        let r = run(self, &mut scratch);
        self.scratch = scratch;
        r
    }

    /// One healing burst: fresh `rho` plus `passes_e`/`passes_b` Marder
    /// passes on the respective fields (either may be zero).
    pub fn marder_burst(
        &mut self,
        comm: &mut Comm,
        passes_e: u32,
        passes_b: u32,
    ) -> Result<(), CommError> {
        if passes_e > 0 {
            self.refresh_rho(comm)?;
            self.marder_clean_e(comm, passes_e)?;
        }
        if passes_b > 0 {
            self.marder_clean_b(comm, passes_b)?;
        }
        Ok(())
    }

    /// This rank's contribution to a global health sample. Refreshes `rho`
    /// and the divergence-stencil ghost planes when the Gauss monitor is
    /// on. Callers sum the samples across ranks (one allreduce of
    /// [`HealthSample::to_vec`]) and classify the *global* sample, so every
    /// rank reaches the identical verdict.
    pub fn local_health_sample(
        &mut self,
        comm: &mut Comm,
        cfg: &SentinelConfig,
    ) -> Result<HealthSample, CommError> {
        let g = self.grid.clone();
        if cfg.max_div_e_rms > 0.0 {
            self.refresh_rho(comm)?;
            self.exchanger
                .exchange_e_normal_low(comm, &mut self.fields, &g)?;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let s = sentinel::local_sample(
            self.step_count,
            &self.fields,
            &g,
            &self.species,
            &self.accumulators,
            cfg,
            &mut scratch,
        );
        self.scratch = scratch;
        Ok(s)
    }

    /// Global particle count.
    pub fn global_particles(&self, comm: &mut Comm) -> Result<u64, CommError> {
        comm.allreduce_sum_u64(self.n_particles() as u64)
    }

    /// Local particle count.
    pub fn n_particles(&self) -> usize {
        self.species.iter().map(Species::len).sum()
    }

    /// Global (field E, field B, kinetic-per-species) energies.
    pub fn global_energies(&self, comm: &mut Comm) -> Result<(f64, f64, Vec<f64>), CommError> {
        let mut v = vec![
            self.fields.energy_e(&self.grid),
            self.fields.energy_b(&self.grid),
        ];
        for sp in &self.species {
            v.push(sp.kinetic_energy(&self.grid));
        }
        let r = comm.allreduce_sum_vec(v)?;
        Ok((r[0], r[1], r[2..].to_vec()))
    }

    /// Find a particle's global position (diagnostic; O(N)).
    pub fn global_positions(&self) -> Vec<(f32, f32, f32)> {
        self.species
            .iter()
            .flat_map(|sp| sp.iter().map(|p| self.position_of(&p)))
            .collect()
    }

    /// Global coordinates of one particle.
    pub fn position_of(&self, p: &Particle) -> (f32, f32, f32) {
        let (i, j, k) = self.grid.voxel_coords(p.i as usize);
        (
            self.grid.particle_x(i, p.dx),
            self.grid.particle_y(j, p.dy),
            self.grid.particle_z(k, p.dz),
        )
    }

    /// Load-balance snapshot: `(max/mean particle count, max rank)`. VPIC's
    /// LPI runs watch this because blow-off plasma piles particles onto the
    /// ranks owning the slab while vacuum ranks idle.
    pub fn load_imbalance(&self, comm: &mut Comm) -> Result<(f64, usize), CommError> {
        let counts = comm.allgather(self.n_particles() as u64)?;
        let total: u64 = counts.iter().sum();
        let mean = total as f64 / counts.len() as f64;
        let (max_rank, &max) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("nonempty world");
        Ok(if mean > 0.0 {
            (max as f64 / mean, max_rank)
        } else {
            (1.0, max_rank)
        })
    }

    /// Push-time imbalance across ranks: `max(t_push)/mean(t_push)` — the
    /// quantity that actually bounds parallel efficiency.
    pub fn push_time_imbalance(&self, comm: &mut Comm) -> Result<f64, CommError> {
        let times = comm.allgather(self.timings.push)?;
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        Ok(if mean > 0.0 {
            times.iter().cloned().fold(0.0, f64::max) / mean
        } else {
            1.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanompi::run_expect;
    use vpic_core::sim::Simulation;

    /// The distributed sponge must damp by *global* x position: each
    /// rank's slab sees only its portion of the layer, and ghost planes
    /// pick up exactly the factor the owning neighbor applies.
    #[test]
    fn sponge_damps_in_global_coordinates() {
        let spec = DomainSpec::periodic((8, 2, 2), (0.5, 0.5, 0.5), 0.1, 2);
        let lx = spec.local_cells().0;
        assert_eq!(lx, 4, "expected an x-decomposed 2-rank split");
        let sponge = Sponge::symmetric(2, 0.5);
        let sims: Vec<DistributedSim> = (0..2)
            .map(|rank| {
                let mut sim = DistributedSim::new(spec.clone(), rank, 1);
                sim.sponge = Some(sponge);
                for v in sim.fields.ey.iter_mut() {
                    *v = 1.0;
                }
                let g = sim.grid.clone();
                sim.apply_sponge(&g);
                sim
            })
            .collect();

        let g = sims[0].grid.clone();
        // Rank 0 holds global planes 1–4: plane 1 is the wall, planes 3–4
        // sit outside the 2-cell layer.
        assert_eq!(
            sims[0].fields.ey[g.voxel(1, 1, 1)],
            sponge.factor(1, 8),
            "wall plane"
        );
        assert_eq!(sims[0].fields.ey[g.voxel(3, 1, 1)], 1.0, "interior");
        assert_eq!(sims[0].fields.ey[g.voxel(4, 1, 1)], 1.0, "interior");
        // Rank 1 holds global planes 5–8: local plane 4 is the high wall.
        assert_eq!(sims[1].fields.ey[g.voxel(1, 1, 1)], 1.0, "interior");
        assert_eq!(
            sims[1].fields.ey[g.voxel(4, 1, 1)],
            sponge.factor(8, 8),
            "high wall"
        );
        // Rank 1's low ghost (global plane 4) matches rank 0's live
        // plane 4 — ghosts stay bit-consistent without an exchange.
        assert_eq!(
            sims[1].fields.ey[g.voxel(0, 1, 1)],
            sims[0].fields.ey[g.voxel(4, 1, 1)]
        );
        // And rank 0's high ghost (global 5) matches rank 1's live plane 1.
        assert_eq!(
            sims[0].fields.ey[g.voxel(5, 1, 1)],
            sims[1].fields.ey[g.voxel(1, 1, 1)]
        );
    }

    /// A ballistic particle crossing rank boundaries must follow the exact
    /// same trajectory as in an equivalent single-domain run.
    #[test]
    fn ballistic_trajectory_matches_single_domain() {
        let global = (8usize, 2usize, 2usize);
        let cell = (0.5f32, 0.5f32, 0.5f32);
        let dt = 0.2f32;
        let u0 = (1.3f32, 0.4f32, -0.2f32);
        let steps = 30;

        // Single-domain reference.
        let g = Grid::periodic(global, cell, dt);
        let mut reference = Simulation::new(g, 1);
        let mut e = Species::new("e", -1.0, 1.0).with_sort_interval(0);
        e.push(Particle {
            i: reference.grid.voxel(2, 1, 1) as u32,
            dx: 0.1,
            dy: -0.2,
            dz: 0.3,
            ux: u0.0,
            uy: u0.1,
            uz: u0.2,
            w: 1.0,
        });
        reference.add_species(e);
        for _ in 0..steps {
            reference.step();
        }
        let p = reference.species[0].get(0);
        let (i, j, k) = reference.grid.voxel_coords(p.i as usize);
        let want = (
            reference.grid.particle_x(i, p.dx),
            reference.grid.particle_y(j, p.dy),
            reference.grid.particle_z(k, p.dz),
        );
        let want_u = (p.ux, p.uy, p.uz);

        // Distributed: 2 ranks along x.
        let (results, _) = run_expect(2, |comm| {
            let spec = DomainSpec::periodic(global, cell, dt, 2);
            let mut sim = DistributedSim::new(spec, comm.rank(), 1);
            let mut e = Species::new("e", -1.0, 1.0).with_sort_interval(0);
            if comm.rank() == 0 {
                e.push(Particle {
                    i: sim.grid.voxel(2, 1, 1) as u32,
                    dx: 0.1,
                    dy: -0.2,
                    dz: 0.3,
                    ux: u0.0,
                    uy: u0.1,
                    uz: u0.2,
                    w: 1.0,
                });
            }
            sim.add_species(e);
            for _ in 0..steps {
                sim.step(comm).unwrap();
            }
            (sim.global_positions(), sim.migrated)
        });
        let positions: Vec<(f32, f32, f32)> = results
            .iter()
            .flat_map(|(p, _)| p.iter().copied())
            .collect();
        assert_eq!(positions.len(), 1, "particle count changed");
        let got = positions[0];
        assert!(
            (got.0 - want.0).abs() < 2e-4
                && (got.1 - want.1).abs() < 2e-4
                && (got.2 - want.2).abs() < 2e-4,
            "trajectory diverged: got {got:?}, want {want:?}"
        );
        let total_migrated: u64 = results.iter().map(|(_, m)| m).sum();
        assert!(total_migrated > 0, "particle never crossed a rank boundary");
        // Momentum sanity (fields from its own wake are tiny but nonzero).
        let _ = want_u;
    }

    /// Distributed uniform plasma: particle count exactly conserved, total
    /// energy conserved to ~2%, and migration actually exercised.
    #[test]
    fn distributed_plasma_conserves() {
        let (results, traffic) = run_expect(4, |comm| {
            let spec = DomainSpec::periodic((8, 8, 4), (0.25, 0.25, 0.25), 0.1, 4);
            let mut sim = DistributedSim::new(spec, comm.rank(), 2);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 42, 1.0, 8, Momentum::thermal(0.08));
            let n0 = sim.global_particles(comm).unwrap();
            let (fe, fb, ke) = sim.global_energies(comm).unwrap();
            let e0 = fe + fb + ke.iter().sum::<f64>();
            for _ in 0..25 {
                sim.step(comm).unwrap();
            }
            let n1 = sim.global_particles(comm).unwrap();
            let (fe, fb, ke) = sim.global_energies(comm).unwrap();
            let e1 = fe + fb + ke.iter().sum::<f64>();
            (n0, n1, e0, e1, sim.migrated)
        });
        let (n0, n1, e0, e1, _) = results[0];
        assert_eq!(n0, n1, "lost particles");
        assert!((e1 - e0).abs() / e0 < 0.02, "energy drift {e0} -> {e1}");
        let migrated: u64 = results.iter().map(|r| r.4).sum();
        assert!(migrated > 0, "no migration happened");
        assert!(traffic.total_bytes > 0);
    }

    /// An exile crossing a rank boundary must land bit-identically
    /// whichever storage layout holds it: the mover hand-off, the migrant
    /// bytes on the wire and the receiver-side move continuation are all
    /// layout-independent, so a 2-rank AoSoA run retraces the AoS run
    /// exactly — particles, fields and per-rank migration counts.
    #[test]
    fn migration_is_bitwise_identical_across_layouts() {
        let run = |layout: Layout| {
            let (results, _) = run_expect(2, move |comm| {
                let spec = DomainSpec::periodic((8, 4, 2), (0.25, 0.25, 0.25), 0.1, 2);
                let mut sim = DistributedSim::new(spec, comm.rank(), 1);
                sim.set_layout(layout);
                assert_eq!(sim.layout(), layout);
                let si = sim.add_species(Species::new("e", -1.0, 1.0));
                sim.load_uniform(si, 42, 1.0, 8, Momentum::thermal(0.08));
                for _ in 0..20 {
                    sim.step(comm).unwrap();
                }
                (
                    sim.species[0].to_particles(),
                    sim.fields.ex.clone(),
                    sim.fields.cbz.clone(),
                    sim.migrated,
                )
            });
            results
        };
        let aos = run(Layout::Aos);
        let aosoa = run(Layout::Aosoa);
        let migrated: u64 = aos.iter().map(|r| r.3).sum();
        assert!(migrated > 0, "no exile ever crossed a rank boundary");
        for (rank, (a, b)) in aos.iter().zip(aosoa.iter()).enumerate() {
            assert_eq!(a.3, b.3, "rank {rank}: migration counts differ");
            assert_eq!(a.0, b.0, "rank {rank}: particles differ");
            for (v, (x, y)) in a.1.iter().zip(b.1.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "rank {rank} ex[{v}]");
            }
            for (v, (x, y)) in a.2.iter().zip(b.2.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "rank {rank} cbz[{v}]");
            }
        }
    }

    /// Distributed Marder cleaning must reproduce the serial pass exactly:
    /// with the ghost planes refreshed as the serial mirrors would, every
    /// voxel sees identical stencil inputs, so the result is bit-identical.
    #[test]
    fn distributed_marder_matches_single_domain() {
        let global = (8usize, 4usize, 4usize);
        let cell = (0.5f32, 0.5f32, 0.5f32);
        let dt = 0.1f32;
        let passes = 6u32;
        let spike = |g: &Grid, f: &mut FieldArray, x0: f32| {
            for k in 1..=g.nz {
                for j in 1..=g.ny {
                    for i in 1..=g.nx {
                        let gx = x0 + (i as f32 - 0.5) * g.dx;
                        let v = g.voxel(i, j, k);
                        f.ex[v] = (gx * 0.7).sin();
                        f.cbx[v] = (gx * 1.3).cos();
                    }
                }
            }
        };

        // Serial reference (rho stays zero in both runs).
        let g = Grid::periodic(global, cell, dt);
        let mut reference = Simulation::new(g, 1);
        let gr = reference.grid.clone();
        spike(&gr, &mut reference.fields, 0.0);
        sync_e(&mut reference.fields, &gr, bcs_of(&gr));
        sync_b(&mut reference.fields, &gr, bcs_of(&gr));
        let mut scratch = Vec::new();
        for _ in 0..passes {
            vpic_core::field_solver::clean_div_e(&mut reference.fields, &gr, &mut scratch);
            vpic_core::field_solver::clean_div_b(&mut reference.fields, &gr, &mut scratch);
        }
        let probe = gr.voxel(3, 2, 2);
        let want = (reference.fields.ex[probe], reference.fields.cbx[probe]);

        let (results, _) = run_expect(2, |comm| -> Result<Option<(f32, f32)>, CommError> {
            let spec = DomainSpec::periodic(global, cell, dt, 2);
            let mut sim = DistributedSim::new(spec, comm.rank(), 1);
            let g = sim.grid.clone();
            spike(&g, &mut sim.fields, g.x0);
            sim.synchronize_fields(comm)?;
            sim.marder_clean_e(comm, passes)?;
            sim.marder_clean_b(comm, passes)?;
            // Global cell 3 lives on rank 0 (4 cells per rank).
            Ok((comm.rank() == 0).then(|| {
                (
                    sim.fields.ex[g.voxel(3, 2, 2)],
                    sim.fields.cbx[g.voxel(3, 2, 2)],
                )
            }))
        });
        let got = match &results[0] {
            Ok(Some(v)) => *v,
            other => panic!("rank 0 probe failed: {other:?}"),
        };
        assert_eq!(got, want, "distributed Marder diverged from serial");
    }

    /// A vacuum plane wave crossing rank boundaries must match the
    /// single-domain solution at a probe point.
    #[test]
    fn plane_wave_across_ranks_matches_single_domain() {
        let global = (32usize, 2usize, 2usize);
        let cell = (0.125f32, 0.125f32, 0.125f32);
        let dt = Grid::courant_dt(1.0, cell, 0.6);
        let steps = 40usize;
        let kx = 2.0 * std::f64::consts::PI / (32.0 * 0.125);

        let init = |g: &Grid, f: &mut FieldArray, x0: f32| {
            for i in 1..=g.nx {
                let x_node = x0 as f64 + (i - 1) as f64 * g.dx as f64;
                let x_edge = x_node + 0.5 * g.dx as f64;
                for k in 0..g.strides().2 {
                    for j in 0..g.strides().1 {
                        let v = g.voxel(i, j, k);
                        f.ey[v] = (kx * x_node).sin() as f32;
                        f.cbz[v] = (kx * (x_edge + 0.5 * dt as f64)).sin() as f32;
                    }
                }
            }
        };

        // Reference.
        let g = Grid::periodic(global, cell, dt);
        let mut reference = Simulation::new(g, 1);
        let gr = reference.grid.clone();
        init(&gr, &mut reference.fields, 0.0);
        sync_e(&mut reference.fields, &gr, bcs_of(&gr));
        sync_b(&mut reference.fields, &gr, bcs_of(&gr));
        for _ in 0..steps {
            reference.step();
        }
        let want = reference.fields.ey[gr.voxel(5, 1, 1)];

        let (results, _) = run_expect(4, |comm| {
            let spec = DomainSpec::periodic(global, cell, dt, 4);
            let mut sim = DistributedSim::new(spec, comm.rank(), 1);
            let g = sim.grid.clone();
            init(&g, &mut sim.fields, g.x0);
            sim.synchronize_fields(comm).unwrap();
            for _ in 0..steps {
                sim.step(comm).unwrap();
            }
            // Global cell 5 lives on rank 0 (8 cells per rank).
            if comm.rank() == 0 {
                Some(sim.fields.ey[g.voxel(5, 1, 1)])
            } else {
                None
            }
        });
        let got = results[0].expect("rank 0 probes");
        assert!(
            (got - want).abs() < 1e-5,
            "wave diverged: got {got}, want {want}"
        );
    }
}

#[cfg(test)]
mod balance_tests {
    use super::*;
    use nanompi::run_expect;

    #[test]
    fn imbalance_detects_loaded_rank() {
        // Comm errors propagate out of the rank closure (the fault-handled
        // path) instead of panicking mid-collective and hanging peers.
        let (results, _) = run_expect(4, |comm| -> Result<(f64, usize), CommError> {
            let spec = DomainSpec::periodic((8, 4, 4), (0.5, 0.5, 0.5), 0.1, 4);
            let mut sim = DistributedSim::new(spec, comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            // Rank 2 carries 4× the load.
            let ppc = if comm.rank() == 2 { 32 } else { 8 };
            sim.load_uniform(si, 1, 1.0, ppc, Momentum::thermal(0.05));
            sim.load_imbalance(comm)
        });
        for r in results {
            let (ratio, rank) = r.expect("imbalance probe");
            assert_eq!(rank, 2);
            // 4× on one of four ranks → max/mean = 4/((3+4·1)/4)… = 16/7.
            assert!((ratio - 16.0 / 7.0).abs() < 0.15, "ratio {ratio}");
        }
    }

    #[test]
    fn balanced_world_reports_unity() {
        let (results, _) = run_expect(2, |comm| -> Result<(f64, f64), CommError> {
            let spec = DomainSpec::periodic((4, 4, 4), (0.5, 0.5, 0.5), 0.1, 2);
            let mut sim = DistributedSim::new(spec, comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 9, 1.0, 16, Momentum::thermal(0.05));
            for _ in 0..3 {
                sim.step(comm)?;
            }
            Ok((sim.load_imbalance(comm)?.0, sim.push_time_imbalance(comm)?))
        });
        for r in results {
            let (particles, time) = r.expect("balance probe");
            assert!(
                (particles - 1.0).abs() < 0.1,
                "particle imbalance {particles}"
            );
            assert!((1.0..10.0).contains(&time), "time imbalance {time}");
        }
    }
}
