//! Uniform 3D domain decomposition of a global grid onto a Cartesian rank
//! topology.

use nanompi::CartTopology;
use vpic_core::grid::{Grid, ParticleBc};

/// Description of a distributed run's global problem.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Global cell counts.
    pub global_cells: (usize, usize, usize),
    /// Cell sizes.
    pub cell: (f32, f32, f32),
    /// Time step.
    pub dt: f32,
    /// Rank brick.
    pub topo: CartTopology,
    /// Boundary conditions at the *global* domain edges (per face; an axis
    /// marked periodic must be periodic on both faces and in `topo`).
    pub global_bc: [ParticleBc; 6],
    /// Global low-corner coordinates.
    pub origin: (f32, f32, f32),
}

impl DomainSpec {
    /// Fully periodic global box decomposed over `n` ranks.
    pub fn periodic(
        global_cells: (usize, usize, usize),
        cell: (f32, f32, f32),
        dt: f32,
        n: usize,
    ) -> Self {
        DomainSpec {
            global_cells,
            cell,
            dt,
            topo: CartTopology::balanced(n, [true, true, true]),
            global_bc: [ParticleBc::Periodic; 6],
            origin: (0.0, 0.0, 0.0),
        }
    }

    /// Validate divisibility and periodicity consistency.
    pub fn validate(&self) {
        let g = [
            self.global_cells.0,
            self.global_cells.1,
            self.global_cells.2,
        ];
        for (axis, &cells) in g.iter().enumerate() {
            assert!(
                cells.is_multiple_of(self.topo.dims[axis]),
                "global cells {} not divisible by topology dim {} on axis {axis}",
                cells,
                self.topo.dims[axis]
            );
            let lo = self.global_bc[axis] == ParticleBc::Periodic;
            let hi = self.global_bc[axis + 3] == ParticleBc::Periodic;
            assert_eq!(lo, hi, "periodic global BC must pair on axis {axis}");
            assert_eq!(
                lo, self.topo.periodic[axis],
                "topology periodicity must match global BC on axis {axis}"
            );
            assert!(
                self.global_bc[axis] != ParticleBc::Migrate
                    && self.global_bc[axis + 3] != ParticleBc::Migrate,
                "Migrate is not a global BC"
            );
        }
    }

    /// Local cell counts (same for every rank).
    pub fn local_cells(&self) -> (usize, usize, usize) {
        (
            self.global_cells.0 / self.topo.dims[0],
            self.global_cells.1 / self.topo.dims[1],
            self.global_cells.2 / self.topo.dims[2],
        )
    }

    /// The face neighbors of `rank` (None at non-periodic global edges).
    pub fn neighbors(&self, rank: usize) -> [Option<usize>; 6] {
        let mut out = [None; 6];
        for axis in 0..3 {
            if self.topo.dims[axis] > 1 {
                out[axis] = self.topo.neighbor(rank, axis, -1);
                out[axis + 3] = self.topo.neighbor(rank, axis, 1);
            }
        }
        out
    }

    /// Build the local grid for `rank`.
    pub fn local_grid(&self, rank: usize) -> Grid {
        self.validate();
        let (lx, ly, lz) = self.local_cells();
        let coords = self.topo.coords_of(rank);
        let mut bc = [ParticleBc::Periodic; 6];
        for (axis, &coord) in coords.iter().enumerate() {
            let dims = self.topo.dims[axis];
            for (face, at_edge) in [(axis, coord == 0), (axis + 3, coord + 1 == dims)] {
                bc[face] = if dims == 1 || (at_edge && !self.topo.periodic[axis]) {
                    self.global_bc[face]
                } else {
                    ParticleBc::Migrate
                };
            }
        }
        let mut g = Grid::new((lx, ly, lz), self.cell, self.dt, bc);
        g.x0 = self.origin.0 + coords[0] as f32 * lx as f32 * self.cell.0;
        g.y0 = self.origin.1 + coords[1] as f32 * ly as f32 * self.cell.1;
        g.z0 = self.origin.2 + coords[2] as f32 * lz as f32 * self.cell.2;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_spec_builds_consistent_grids() {
        let spec = DomainSpec::periodic((8, 4, 4), (0.5, 0.5, 0.5), 0.1, 4);
        spec.validate();
        let n = spec.topo.n_ranks();
        assert_eq!(n, 4);
        for rank in 0..n {
            let g = spec.local_grid(rank);
            let (lx, ly, lz) = spec.local_cells();
            assert_eq!((g.nx, g.ny, g.nz), (lx, ly, lz));
        }
    }

    #[test]
    fn decomposed_axis_gets_migrate_faces() {
        let spec = DomainSpec::periodic((8, 4, 4), (0.5, 0.5, 0.5), 0.1, 2);
        assert_eq!(spec.topo.dims, [2, 1, 1]);
        let g = spec.local_grid(0);
        assert_eq!(g.bc[0], ParticleBc::Migrate);
        assert_eq!(g.bc[3], ParticleBc::Migrate);
        assert_eq!(g.bc[1], ParticleBc::Periodic);
        let nb = spec.neighbors(0);
        assert_eq!(nb[0], Some(1));
        assert_eq!(nb[3], Some(1));
        assert_eq!(nb[1], None);
    }

    #[test]
    fn origins_tile_the_global_box() {
        let spec = DomainSpec::periodic((8, 4, 4), (0.5, 1.0, 1.0), 0.1, 2);
        let g0 = spec.local_grid(0);
        let g1 = spec.local_grid(1);
        assert_eq!(g0.x0, 0.0);
        assert_eq!(g1.x0, 4.0 * 0.5);
        assert_eq!(g0.y0, g1.y0);
    }

    #[test]
    fn non_periodic_edges_keep_global_bc() {
        let mut spec = DomainSpec::periodic((8, 4, 4), (0.5, 0.5, 0.5), 0.1, 2);
        spec.topo = CartTopology::new([2, 1, 1], [false, true, true]);
        spec.global_bc[0] = ParticleBc::Reflect;
        spec.global_bc[3] = ParticleBc::Absorb;
        spec.validate();
        let g0 = spec.local_grid(0);
        assert_eq!(g0.bc[0], ParticleBc::Reflect);
        assert_eq!(g0.bc[3], ParticleBc::Migrate);
        let g1 = spec.local_grid(1);
        assert_eq!(g1.bc[0], ParticleBc::Migrate);
        assert_eq!(g1.bc[3], ParticleBc::Absorb);
        assert_eq!(spec.neighbors(0)[0], None);
        assert_eq!(spec.neighbors(1)[3], None);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_grid_panics() {
        let spec = DomainSpec::periodic((9, 4, 4), (0.5, 0.5, 0.5), 0.1, 2);
        spec.validate();
    }
}
