//! Fault-tolerant campaign runtime: rollback-recovery over checkpoints.
//!
//! VPIC's trillion-particle Roadrunner campaigns outlived the machine's
//! mean time between interrupts the unglamorous way — periodic restart
//! dumps plus automatic resubmission. This module reproduces that loop
//! in-process: [`run_campaign`] drives a [`DistributedSim`] for a fixed
//! number of steps, writing a CRC-protected checkpoint generation every
//! `checkpoint_interval` steps and running a cheap global health check
//! (non-finite fields, energy blow-up, particle-count drift) every
//! `health_interval` steps.
//!
//! When anything goes wrong — a [`CommError`] from a dead or faulty peer,
//! or a failed health verdict — every rank rendezvouses through
//! [`Comm::recover`], rediscovers its checkpoint generations *from disk*
//! (rejecting any dump that fails its CRC), agrees with all other ranks on
//! the newest generation present and valid everywhere, reloads it, and
//! replays. Recovery attempts are bounded: past `max_recoveries` the
//! campaign degrades gracefully, writing a best-effort partial dump and
//! returning [`CampaignEnd::Degraded`] instead of aborting the process.
//!
//! Every recovery is recorded in the returned [`CampaignOutcome`] and
//! appended to `recovery_r{rank}.log` in the checkpoint directory.
//!
//! With one push pipeline per rank the replay is bit-exact: a campaign
//! that lost a rank mid-flight ends in exactly the state of an
//! uninterrupted run (asserted by `tests/recovery.rs`).

use crate::dcheckpoint::{load_rank_from_path, save_rank_to_path};
use crate::dsim::DistributedSim;
use nanompi::{Comm, CommError};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;
use vpic_core::checkpoint::CheckpointError;

/// Knobs for one fault-tolerant campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Run until `sim.step_count` reaches this.
    pub steps: u64,
    /// Checkpoint every this many steps (0 disables; step 0 is included).
    pub checkpoint_interval: u64,
    /// Directory for checkpoint generations, recovery logs and partial
    /// dumps (created if absent; shared by all ranks).
    pub checkpoint_dir: PathBuf,
    /// Checkpoint generations kept on disk per rank.
    pub keep_checkpoints: usize,
    /// Rollback attempts before degrading to a partial dump.
    pub max_recoveries: u32,
    /// Health-check every this many steps (0 disables).
    pub health_interval: u64,
    /// Health check fails if global energy exceeds this multiple of the
    /// campaign-start energy.
    pub max_energy_growth: f64,
    /// Override the communicator's op timeout for the whole campaign.
    pub op_timeout: Option<Duration>,
}

impl CampaignConfig {
    pub fn new(steps: u64, checkpoint_interval: u64, checkpoint_dir: impl Into<PathBuf>) -> Self {
        CampaignConfig {
            steps,
            checkpoint_interval,
            checkpoint_dir: checkpoint_dir.into(),
            keep_checkpoints: 2,
            max_recoveries: 3,
            health_interval: 1,
            max_energy_growth: 10.0,
            op_timeout: None,
        }
    }

    pub fn with_max_recoveries(mut self, n: u32) -> Self {
        self.max_recoveries = n;
        self
    }

    pub fn with_health_interval(mut self, n: u64) -> Self {
        self.health_interval = n;
        self
    }

    pub fn with_op_timeout(mut self, t: Duration) -> Self {
        self.op_timeout = Some(t);
        self
    }
}

/// One rollback-recovery episode.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Step at which the fault was detected.
    pub at_step: u64,
    /// 1-based recovery attempt number.
    pub attempt: u32,
    /// What went wrong.
    pub cause: String,
    /// Checkpoint step the world rolled back to.
    pub restored_step: u64,
}

/// How the campaign ended.
#[derive(Clone, Debug)]
pub enum CampaignEnd {
    /// All `steps` completed.
    Completed,
    /// Recovery budget exhausted; a best-effort partial dump was written.
    Degraded { at_step: u64, partial_dump: PathBuf },
}

/// Result of one rank's campaign.
#[derive(Debug)]
pub struct CampaignOutcome {
    pub rank: usize,
    pub end: CampaignEnd,
    /// Total sim steps executed, including replayed ones.
    pub steps_run: u64,
    pub recoveries: Vec<RecoveryEvent>,
}

/// Unrecoverable campaign failure (rollback cannot fix these).
#[derive(Debug)]
pub enum CampaignError {
    /// The recovery rendezvous itself failed: a rank is permanently gone.
    Comm(CommError),
    /// A checkpoint could not be written.
    Checkpoint(CheckpointError),
    Io(io::Error),
    /// No checkpoint generation is valid on every rank.
    NoCommonCheckpoint,
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Comm(e) => write!(f, "unrecoverable communication failure: {e}"),
            CampaignError::Checkpoint(e) => write!(f, "checkpoint write failed: {e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O failure: {e}"),
            CampaignError::NoCommonCheckpoint => {
                write!(f, "no checkpoint generation is valid on every rank")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Why one iteration failed (recoverable causes).
enum Fault {
    Comm(CommError),
    Health(String),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Comm(e) => write!(f, "comm: {e}"),
            Fault::Health(msg) => write!(f, "health: {msg}"),
        }
    }
}

impl From<CommError> for Fault {
    fn from(e: CommError) -> Self {
        Fault::Comm(e)
    }
}

fn checkpoint_path(dir: &Path, step: u64, rank: usize) -> PathBuf {
    dir.join(format!("ckpt_{step:08}_r{rank:04}.vpic"))
}

/// This rank's checkpoint generations on disk, sorted ascending by step
/// (existence only; validity is established by loading).
fn list_own_checkpoints(dir: &Path, rank: usize) -> io::Result<Vec<(u64, PathBuf)>> {
    let suffix = format!("_r{rank:04}.vpic");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("ckpt_") {
            if let Some(step_str) = rest.strip_suffix(&suffix) {
                if let Ok(step) = step_str.parse::<u64>() {
                    out.push((step, entry.path()));
                }
            }
        }
    }
    out.sort_unstable_by_key(|(s, _)| *s);
    Ok(out)
}

/// Global health verdict, identical on every rank (one reduction).
/// Returns `Err(Fault::Health)` on a failed check.
fn health_check(
    comm: &mut Comm,
    sim: &DistributedSim,
    cfg: &CampaignConfig,
    e0: f64,
    n0: u64,
) -> Result<(), Fault> {
    let f = &sim.fields;
    let finite = [&f.ex, &f.ey, &f.ez, &f.cbx, &f.cby, &f.cbz]
        .iter()
        .all(|a| a.iter().all(|v| v.is_finite()));
    let e_local = f.energy_e(&sim.grid)
        + f.energy_b(&sim.grid)
        + sim
            .species
            .iter()
            .map(|sp| sp.kinetic_energy(&sim.grid))
            .sum::<f64>();
    let n_local = sim.n_particles() as f64;
    let global = comm.allreduce_sum_vec(vec![if finite { 0.0 } else { 1.0 }, e_local, n_local])?;
    if global[0] > 0.0 {
        return Err(Fault::Health("non-finite field values".into()));
    }
    if e0 > 0.0 && global[1] > cfg.max_energy_growth * e0 {
        return Err(Fault::Health(format!(
            "energy blow-up: {:.3e} > {} x {:.3e}",
            global[1], cfg.max_energy_growth, e0
        )));
    }
    let n_global = global[2] as u64;
    if n_global != n0 {
        return Err(Fault::Health(format!(
            "particle count drift: {n_global} != {n0}"
        )));
    }
    Ok(())
}

/// Write a checkpoint generation, confirm all ranks wrote theirs, then
/// prune old generations beyond `keep_checkpoints`. Write failures are
/// permanent (rollback cannot fix a dead disk); confirmation failures are
/// recoverable comm faults.
fn take_checkpoint(
    comm: &mut Comm,
    sim: &DistributedSim,
    cfg: &CampaignConfig,
) -> Result<Result<(), Fault>, CampaignError> {
    let path = checkpoint_path(&cfg.checkpoint_dir, sim.step_count, sim.rank);
    save_rank_to_path(sim, &path).map_err(CampaignError::Checkpoint)?;
    let steps = match comm.allgather(sim.step_count) {
        Ok(s) => s,
        Err(e) => return Ok(Err(e.into())),
    };
    if steps.iter().any(|&s| s != sim.step_count) {
        return Ok(Err(Fault::Health(format!(
            "checkpoint confirmation mismatch: {steps:?}"
        ))));
    }
    // All ranks confirmed: older generations beyond the keep window are
    // now garbage.
    let own = list_own_checkpoints(&cfg.checkpoint_dir, sim.rank)?;
    if own.len() > cfg.keep_checkpoints {
        for (_, p) in &own[..own.len() - cfg.keep_checkpoints] {
            let _ = std::fs::remove_file(p);
        }
    }
    Ok(Ok(()))
}

/// Rendezvous, rediscover checkpoints from disk, agree on the newest
/// generation valid on every rank, and reload it. Returns the restored
/// sim and its step.
fn rollback(
    comm: &mut Comm,
    sim: &DistributedSim,
    cfg: &CampaignConfig,
) -> Result<(DistributedSim, u64), CampaignError> {
    comm.recover().map_err(CampaignError::Comm)?;
    // Validate every on-disk generation by fully loading it — CRC failures
    // (torn writes, bit rot) disqualify a generation here, loudly.
    let mut valid_steps = Vec::new();
    for (step, path) in list_own_checkpoints(&cfg.checkpoint_dir, sim.rank)? {
        if load_rank_from_path(sim.spec.clone(), sim.rank, n_pipelines_of(sim), &path).is_ok() {
            valid_steps.push(step);
        }
    }
    let all: Vec<Vec<u64>> = comm
        .allgather(valid_steps.clone())
        .map_err(CampaignError::Comm)?;
    let chosen = valid_steps
        .iter()
        .rev()
        .find(|s| all.iter().all(|ranks| ranks.contains(s)))
        .copied()
        .ok_or(CampaignError::NoCommonCheckpoint)?;
    let path = checkpoint_path(&cfg.checkpoint_dir, chosen, sim.rank);
    let restored = load_rank_from_path(sim.spec.clone(), sim.rank, n_pipelines_of(sim), &path)
        .map_err(CampaignError::Checkpoint)?;
    // Everyone must resume from the same generation.
    let confirm = comm.allgather(chosen).map_err(CampaignError::Comm)?;
    if confirm.iter().any(|&s| s != chosen) {
        return Err(CampaignError::NoCommonCheckpoint);
    }
    Ok((restored, chosen))
}

fn n_pipelines_of(sim: &DistributedSim) -> usize {
    sim.accumulators.arrays.len()
}

fn append_log(dir: &Path, rank: usize, line: &str) {
    let path = dir.join(format!("recovery_r{rank:04}.log"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Drive `sim` to `cfg.steps` with periodic checkpoints, health checks and
/// automatic rollback-recovery; returns the final simulation state (the
/// last good state, on degradation) alongside the outcome. See the module
/// docs for the protocol.
pub fn run_campaign(
    comm: &mut Comm,
    mut sim: DistributedSim,
    cfg: &CampaignConfig,
) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
    std::fs::create_dir_all(&cfg.checkpoint_dir)?;
    if let Some(t) = cfg.op_timeout {
        comm.set_op_timeout(t);
    }
    let rank = sim.rank;
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut steps_run = 0u64;

    // Campaign-start health baselines (deterministic: identical on every
    // rank, and recomputed identically after any replay from step 0).
    let n0 = match sim.global_particles(comm) {
        Ok(n) => n,
        Err(e) => return Err(CampaignError::Comm(e)),
    };
    let e0 = {
        let (fe, fb, ke) = sim.global_energies(comm).map_err(CampaignError::Comm)?;
        fe + fb + ke.iter().sum::<f64>()
    };

    let end = loop {
        if sim.step_count >= cfg.steps {
            break CampaignEnd::Completed;
        }
        let step = sim.step_count;
        let fault: Fault = match (|| -> Result<Result<(), Fault>, CampaignError> {
            if let Err(e) = comm.tick(step) {
                return Ok(Err(e.into()));
            }
            if cfg.checkpoint_interval > 0 && step.is_multiple_of(cfg.checkpoint_interval) {
                if let Err(f) = take_checkpoint(comm, &sim, cfg)? {
                    return Ok(Err(f));
                }
            }
            if cfg.health_interval > 0 && step.is_multiple_of(cfg.health_interval) {
                if let Err(f) = health_check(comm, &sim, cfg, e0, n0) {
                    return Ok(Err(f));
                }
            }
            if let Err(e) = sim.step(comm) {
                return Ok(Err(e.into()));
            }
            steps_run += 1;
            Ok(Ok(()))
        })()? {
            Ok(()) => continue,
            Err(f) => f,
        };

        let attempt = recoveries.len() as u32 + 1;
        if attempt > cfg.max_recoveries {
            // Budget exhausted: degrade gracefully with a best-effort
            // partial dump of whatever state this rank still holds.
            let partial = cfg.checkpoint_dir.join(format!("partial_r{rank:04}.vpic"));
            let _ = save_rank_to_path(&sim, &partial);
            append_log(
                &cfg.checkpoint_dir,
                rank,
                &format!("step={step} attempt={attempt} cause=\"{fault}\" action=degraded"),
            );
            break CampaignEnd::Degraded {
                at_step: step,
                partial_dump: partial,
            };
        }
        let (restored, restored_step) = rollback(comm, &sim, cfg)?;
        sim = restored;
        append_log(
            &cfg.checkpoint_dir,
            rank,
            &format!(
                "step={step} attempt={attempt} cause=\"{fault}\" restored_step={restored_step}"
            ),
        );
        recoveries.push(RecoveryEvent {
            at_step: step,
            attempt,
            cause: fault.to_string(),
            restored_step,
        });
    };

    Ok((
        sim,
        CampaignOutcome {
            rank,
            end,
            steps_run,
            recoveries,
        },
    ))
}
