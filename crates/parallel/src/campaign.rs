//! Fault-tolerant campaign runtime: rollback-recovery and hot-spare
//! replacement over checkpoints.
//!
//! VPIC's trillion-particle Roadrunner campaigns outlived the machine's
//! mean time between interrupts the unglamorous way — periodic restart
//! dumps plus automatic resubmission. This module reproduces that loop
//! in-process: [`run_campaign`] drives a [`DistributedSim`] for a fixed
//! number of steps, writing a CRC-protected checkpoint generation on a
//! [`CheckpointPolicy`] schedule and running the numerical-integrity
//! sentinel (see `vpic_core::sentinel`) every `health_interval` steps:
//! non-finite sweeps, the energy ledger, particle conservation, optional
//! Gauss-law / `∇·B` residual monitors and momentum/position bounds, all
//! summed into one global [`HealthSample`] by a *single* reduction and
//! classified identically on every rank into a structured
//! [`HealthVerdict`].
//!
//! The sentinel heals before it recovers: a repairable verdict (divergence
//! residuals) first triggers an in-place Marder-cleaning burst with
//! escalating pass counts (`marder_passes << burst`); only when the burst
//! budget (`max_marder_bursts`) is exhausted does the campaign fall back
//! to rollback, and only when the recovery budget is exhausted does it
//! degrade — writing a partial dump *plus* a JSON flight recorder of the
//! last N health samples. The health gate runs *before* the checkpoint
//! dump at the same step, so every generation on disk is certified clean
//! and rollback always restores healthy state.
//!
//! When anything else goes wrong — a [`CommError`] from a dead or faulty
//! peer, or an unrepairable health verdict — every rank rendezvouses through
//! [`Comm::recover`], rediscovers its checkpoint generations *from disk*
//! (rejecting any dump that fails its CRC), agrees with all other ranks on
//! the newest generation present and valid everywhere, reloads it, and
//! replays. Ranks that still hold the confirmed generation in memory
//! restore from that cache without touching the filesystem. Recovery
//! attempts are bounded: past `max_recoveries` the campaign degrades
//! gracefully, writing a best-effort partial dump and returning
//! [`CampaignEnd::Degraded`] instead of aborting the process.
//!
//! Two recovery modes are offered ([`RecoveryMode`]):
//!
//! * **Rollback** (default): the killed rank's own thread clears its fault
//!   and rejoins the world, exactly as PR 1 landed it.
//! * **HotSpare**: the killed rank *stays dead*. Its worker surrenders the
//!   [`nanompi`] endpoint, spawns a replacement thread that adopts it
//!   ([`Comm::adopt`]), restores the shard from the newest validated
//!   checkpoint on disk, and finishes the campaign while surviving ranks
//!   wait at the rendezvous and restore from their in-memory cache — one
//!   rank reads disk instead of the whole world. The victim thread only
//!   reclaims the endpoint after the spare finishes, so post-campaign
//!   collectives still work from the original worker.
//!
//! The checkpoint cadence is either a fixed step count or
//! [`CheckpointPolicy::Auto`]: the Young/Daly optimum
//! `τ_opt = √(2·δ·MTBI)` resolved from the *measured* per-dump cost and
//! step time (EWMA-smoothed, max-reduced across ranks on the checkpoint
//! confirmation collective so every rank resolves the identical interval).
//! Dumps can be delta+RLE compressed and write-throttled
//! (`compress`, `write_throttle_bps`) to keep big particle counts inside
//! the dump budget.
//!
//! Every recovery is recorded in the returned [`CampaignOutcome`] and
//! appended to `recovery_r{rank}.log` in the checkpoint directory.
//!
//! With one push pipeline per rank the replay is bit-exact: a campaign
//! that lost a rank mid-flight ends in exactly the state of an
//! uninterrupted run (asserted by `tests/recovery.rs`), in either
//! recovery mode.

use crate::dcheckpoint::{dump_rank_bytes, load_rank, load_rank_from_path, write_bytes_atomic};
use crate::dsim::DistributedSim;
use nanompi::{Comm, CommError};
use roadrunner_model::young_daly_interval_steps;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use vpic_core::checkpoint::CheckpointError;
use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;
use vpic_core::sentinel::{
    burst_passes, classify, validate_cfl, AnomalyKind, CorruptionPlan, FlightRecorder, HealEvent,
    HealthSample, HealthVerdict, SentinelConfig,
};

/// How the campaign schedules restart dumps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CheckpointPolicy {
    /// Dump every `n` steps (0 disables checkpointing entirely).
    Fixed(u64),
    /// Resolve the interval at runtime from the Young/Daly optimum
    /// `τ_opt = √(2·δ·MTBI)` using the measured per-dump cost `δ` and
    /// step time, clamped to `[min_interval, max_interval]`. Until the
    /// first measurement lands the campaign dumps every `min_interval`
    /// steps.
    Auto {
        /// Assumed mean time between interrupts.
        mtbi: Duration,
        /// Never dump more often than this many steps.
        min_interval: u64,
        /// Never dump less often than this many steps.
        max_interval: u64,
    },
}

impl CheckpointPolicy {
    /// The interval (steps) this policy yields for a measured dump cost
    /// and step time, both in seconds. Deterministic: ranks that agree on
    /// the inputs agree on the interval.
    pub fn resolve(&self, checkpoint_seconds: f64, step_seconds: f64) -> u64 {
        match *self {
            CheckpointPolicy::Fixed(n) => n,
            CheckpointPolicy::Auto {
                mtbi,
                min_interval,
                max_interval,
            } => {
                let lo = min_interval.max(1);
                let hi = max_interval.max(lo);
                young_daly_interval_steps(checkpoint_seconds, mtbi.as_secs_f64(), step_seconds)
                    .clamp(lo, hi)
            }
        }
    }
}

/// What happens to a rank the fault plan kills.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// The victim's own thread clears the fault and rejoins the world.
    #[default]
    Rollback,
    /// The victim stays dead; a freshly spawned replacement thread adopts
    /// its communicator endpoint and restores the shard from disk.
    HotSpare,
}

/// Knobs for one fault-tolerant campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Run until `sim.step_count` reaches this.
    pub steps: u64,
    /// Checkpoint schedule (fixed interval or Young/Daly auto).
    pub checkpoint: CheckpointPolicy,
    /// Directory for checkpoint generations, recovery logs and partial
    /// dumps (created if absent; shared by all ranks).
    pub checkpoint_dir: PathBuf,
    /// Checkpoint generations kept on disk per rank.
    pub keep_checkpoints: usize,
    /// Rollback attempts before degrading to a partial dump.
    pub max_recoveries: u32,
    /// Health-check every this many steps (0 disables).
    pub health_interval: u64,
    /// Health check fails if global energy exceeds this multiple of the
    /// campaign-start energy.
    pub max_energy_growth: f64,
    /// Override the communicator's op timeout for the whole campaign.
    pub op_timeout: Option<Duration>,
    /// How killed ranks come back.
    pub recovery: RecoveryMode,
    /// Allow delta+RLE compression of dump sections.
    pub compress: bool,
    /// Pace checkpoint writes to at most this many bytes/second.
    pub write_throttle_bps: Option<u64>,
    /// Sentinel thresholds beyond the legacy knobs above (divergence
    /// monitors, momentum/position bounds, Marder burst budget, flight
    /// recorder depth). Merged with `health_interval`/`max_energy_growth`
    /// by [`CampaignConfig::effective_sentinel`].
    pub sentinel: SentinelConfig,
    /// Seeded one-shot field corruption to inject (transient-SEU model;
    /// `None` = no injection). Fired events stay fired across rollback, so
    /// the replay is clean.
    pub corruption: Option<CorruptionPlan>,
}

impl CampaignConfig {
    pub fn new(steps: u64, checkpoint_interval: u64, checkpoint_dir: impl Into<PathBuf>) -> Self {
        CampaignConfig {
            steps,
            checkpoint: CheckpointPolicy::Fixed(checkpoint_interval),
            checkpoint_dir: checkpoint_dir.into(),
            keep_checkpoints: 2,
            max_recoveries: 3,
            health_interval: 1,
            max_energy_growth: 10.0,
            op_timeout: None,
            recovery: RecoveryMode::Rollback,
            compress: true,
            write_throttle_bps: None,
            sentinel: SentinelConfig::default(),
            corruption: None,
        }
    }

    /// The sentinel thresholds in effect: the `sentinel` block with the
    /// legacy `health_interval`/`max_energy_growth` knobs folded in. The
    /// particle-drift bound defaults to *exact* conservation (the
    /// campaign's historical contract) unless set explicitly.
    pub fn effective_sentinel(&self) -> SentinelConfig {
        let mut s = self.sentinel;
        s.health_interval = self.health_interval;
        s.max_energy_growth = self.max_energy_growth;
        if s.max_particle_drift < 0.0 {
            s.max_particle_drift = 0.0;
        }
        s
    }

    pub fn with_max_recoveries(mut self, n: u32) -> Self {
        self.max_recoveries = n;
        self
    }

    pub fn with_health_interval(mut self, n: u64) -> Self {
        self.health_interval = n;
        self
    }

    pub fn with_op_timeout(mut self, t: Duration) -> Self {
        self.op_timeout = Some(t);
        self
    }

    pub fn with_checkpoint_policy(mut self, p: CheckpointPolicy) -> Self {
        self.checkpoint = p;
        self
    }

    pub fn with_recovery(mut self, mode: RecoveryMode) -> Self {
        self.recovery = mode;
        self
    }

    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    pub fn with_write_throttle(mut self, bps: Option<u64>) -> Self {
        self.write_throttle_bps = bps;
        self
    }

    /// Set the sentinel thresholds, folding its cadence and energy bound
    /// into the legacy knobs (a zero cadence keeps the current one).
    pub fn with_sentinel(mut self, s: SentinelConfig) -> Self {
        if s.health_interval > 0 {
            self.health_interval = s.health_interval;
        }
        self.max_energy_growth = s.max_energy_growth;
        self.sentinel = s;
        self
    }

    pub fn with_corruption(mut self, plan: CorruptionPlan) -> Self {
        self.corruption = Some(plan);
        self
    }
}

/// One recovery episode (rollback or hot-spare hand-off).
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Step at which the fault was detected.
    pub at_step: u64,
    /// 1-based recovery attempt number.
    pub attempt: u32,
    /// What went wrong.
    pub cause: String,
    /// Checkpoint step the world rolled back to.
    pub restored_step: u64,
    /// True when this rank's shard was adopted by a replacement thread.
    pub hot_spare: bool,
}

/// How the campaign ended.
#[derive(Clone, Debug)]
pub enum CampaignEnd {
    /// All `steps` completed.
    Completed,
    /// Recovery budget exhausted (or the world could no longer agree on a
    /// checkpoint); a best-effort partial dump was written next to a JSON
    /// flight recorder holding the last N health samples and verdicts.
    Degraded {
        at_step: u64,
        partial_dump: PathBuf,
        flight_recorder: PathBuf,
    },
}

/// Result of one rank's campaign.
#[derive(Debug)]
pub struct CampaignOutcome {
    pub rank: usize,
    pub end: CampaignEnd,
    /// Total sim steps executed, including replayed ones.
    pub steps_run: u64,
    pub recoveries: Vec<RecoveryEvent>,
    /// In-place Marder healing episodes (escalating bursts), in order.
    pub heals: Vec<HealEvent>,
    /// Largest `max/mean` particle-count imbalance observed at the health
    /// cadence (0.0 when never sampled).
    pub peak_imbalance: f64,
    /// The checkpoint interval in effect when the campaign ended (for
    /// `Fixed` this is the configured value; for `Auto` the resolved
    /// Young/Daly optimum).
    pub effective_interval: u64,
    /// The thread that ran the campaign to its end — differs from the
    /// original worker thread iff a hot spare took over.
    pub finished_by: std::thread::ThreadId,
}

/// Unrecoverable campaign failure (rollback cannot fix these).
#[derive(Debug)]
pub enum CampaignError {
    /// The recovery rendezvous itself failed: a rank is permanently gone.
    Comm(CommError),
    /// A checkpoint could not be written.
    Checkpoint(CheckpointError),
    Io(io::Error),
    /// No checkpoint generation is valid on every rank.
    NoCommonCheckpoint,
    /// The hot-spare replacement thread died without handing the endpoint
    /// back.
    HotSpare(String),
    /// A world launch failed before (or instead of) producing an outcome:
    /// a rank panicked or a socket bootstrap was refused.
    Launch(String),
    /// The setup itself is invalid (e.g. a CFL violation): no amount of
    /// rollback can fix a deck that is unstable by construction.
    Config(HealthVerdict),
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Comm(e) => write!(f, "unrecoverable communication failure: {e}"),
            CampaignError::Checkpoint(e) => write!(f, "checkpoint write failed: {e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O failure: {e}"),
            CampaignError::NoCommonCheckpoint => {
                write!(f, "no checkpoint generation is valid on every rank")
            }
            CampaignError::HotSpare(detail) => {
                write!(f, "hot-spare replacement failed: {detail}")
            }
            CampaignError::Launch(detail) => write!(f, "world launch failed: {detail}"),
            CampaignError::Config(v) => write!(f, "invalid setup: {v}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Why one iteration failed (recoverable causes).
enum Fault {
    Comm(CommError),
    Health(HealthVerdict),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Comm(e) => write!(f, "comm: {e}"),
            Fault::Health(v) => write!(f, "health: {v}"),
        }
    }
}

impl From<CommError> for Fault {
    fn from(e: CommError) -> Self {
        Fault::Comm(e)
    }
}

fn checkpoint_path(dir: &Path, step: u64, rank: usize) -> PathBuf {
    dir.join(format!("ckpt_{step:08}_r{rank:04}.vpic"))
}

/// This rank's checkpoint generations on disk, sorted ascending by step
/// (existence only; validity is established by loading).
fn list_own_checkpoints(dir: &Path, rank: usize) -> io::Result<Vec<(u64, PathBuf)>> {
    let suffix = format!("_r{rank:04}.vpic");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("ckpt_") {
            if let Some(step_str) = rest.strip_suffix(&suffix) {
                if let Ok(step) = step_str.parse::<u64>() {
                    out.push((step, entry.path()));
                }
            }
        }
    }
    out.sort_unstable_by_key(|(s, _)| *s);
    Ok(out)
}

/// Sum every rank's local health sample into the global one with a
/// *single* reduction. Each rank then classifies the identical global
/// sample, so the verdict is deterministic and needs no further traffic.
fn global_sample(
    comm: &mut Comm,
    sim: &mut DistributedSim,
    scfg: &SentinelConfig,
) -> Result<HealthSample, CommError> {
    let local = sim.local_health_sample(comm, scfg)?;
    let summed = comm.allreduce_sum_vec(local.to_vec())?;
    Ok(HealthSample::from_vec(local.step, &summed))
}

fn n_pipelines_of(sim: &DistributedSim) -> usize {
    sim.accumulators.arrays.len()
}

/// Campaign-start health baselines `(energy, particles)` — two collectives,
/// deterministic across ranks. Fails with a recoverable [`CommError`].
fn world_baseline(comm: &mut Comm, sim: &DistributedSim) -> Result<(f64, u64), CommError> {
    let n0 = sim.global_particles(comm)?;
    let (fe, fb, ke) = sim.global_energies(comm)?;
    Ok((fe + fb + ke.iter().sum::<f64>(), n0))
}

fn append_log(dir: &Path, rank: usize, line: &str) {
    let path = dir.join(format!("recovery_r{rank:04}.log"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// EWMA with a 0.3 gain; the first sample seeds the average directly.
fn ewma(old: f64, sample: f64) -> f64 {
    if old == 0.0 {
        sample
    } else {
        0.3 * sample + 0.7 * old
    }
}

/// Per-rank campaign state that survives hot-spare hand-offs: everything
/// the replacement thread needs travels inside this struct.
struct Runner {
    cfg: CampaignConfig,
    rank: usize,
    /// Campaign-start health baselines `(energy, particles)`, identical on
    /// every rank. Computed inside the fault-handled loop at every step-0
    /// pass (the pristine and restored-from-generation-0 states are
    /// bit-identical), so a fault during the baseline collectives recovers
    /// like any other instead of failing the campaign.
    baseline: Option<(f64, u64)>,
    recoveries: Vec<RecoveryEvent>,
    steps_run: u64,
    /// Effective checkpoint interval (updated at each confirmation for
    /// `Auto`, in lockstep across ranks).
    interval: u64,
    /// EWMA of the measured per-dump cost (seconds), locally observed.
    ckpt_secs: f64,
    /// EWMA of the measured per-step wall time (seconds).
    step_secs: f64,
    /// Newest *confirmed* checkpoint this rank still holds in memory:
    /// `(step, serialized bytes)`. Lets survivors restore without disk
    /// I/O; a hot spare starts with no cache (the victim's memory is
    /// gone).
    cache: Option<(u64, Vec<u8>)>,
    /// Effective sentinel thresholds (legacy knobs folded in).
    scfg: SentinelConfig,
    /// Ring of recent global health samples + verdicts; serialized to
    /// JSON next to the partial dump on degradation.
    recorder: FlightRecorder,
    /// Seeded one-shot corruption injection; fired flags survive rollback.
    corruption: Option<CorruptionPlan>,
    /// Consecutive Marder-burst escalation level (reset on a healthy
    /// check and on rollback).
    bursts: u32,
    /// Completed healing episodes.
    heals: Vec<HealEvent>,
    /// Peak particle-count imbalance seen at the health cadence.
    peak_imbalance: f64,
}

/// External current drive hook threaded through the campaign loop into
/// [`DistributedSim::step_with`] every step (the laser antenna, in the LPI
/// decks). `Sync` because a hot-spare replacement thread borrows it.
pub trait CampaignDrive: Fn(&mut FieldArray, &Grid, u64) + Sync {}
impl<F: Fn(&mut FieldArray, &Grid, u64) + Sync> CampaignDrive for F {}

impl Runner {
    /// Run one step of the campaign schedule: tick faults, maybe dump,
    /// maybe health-check, advance the sim. `Ok(Err(fault))` is a
    /// recoverable failure; `Err(_)` is permanent.
    fn iterate(
        &mut self,
        comm: &mut Comm,
        sim: &mut DistributedSim,
        drive: &impl CampaignDrive,
    ) -> Result<Result<(), Fault>, CampaignError> {
        let step = sim.step_count;
        if let Err(e) = comm.tick(step) {
            return Ok(Err(e.into()));
        }
        // Seeded one-shot corruption (transient-SEU model). Fired flags
        // survive rollback, so the replay of the same step is clean.
        if let Some(plan) = self.corruption.as_mut() {
            let hits = plan.apply(step, self.rank, &mut sim.fields, &sim.grid);
            if hits > 0 {
                append_log(
                    &self.cfg.checkpoint_dir,
                    self.rank,
                    &format!("step={step} injected_corruption={hits}"),
                );
            }
        }
        // Health baselines are (re)computed on every step-0 pass so the
        // collective schedule is identical across ranks even when some
        // already hold a baseline from before a rollback to generation 0.
        // The step-0 state is bit-identical either way, so the values are
        // too.
        if step == 0 {
            match world_baseline(comm, sim) {
                Ok(b) => self.baseline = Some(b),
                Err(e) => return Ok(Err(e.into())),
            }
        }
        // The health gate runs BEFORE the checkpoint dump at this step:
        // every generation on disk is certified clean, so rollback always
        // restores healthy state.
        if self.scfg.health_interval > 0 && step.is_multiple_of(self.scfg.health_interval) {
            let baseline = self.baseline.map(|(e0, n0)| (e0, n0 as f64));
            match global_sample(comm, sim, &self.scfg) {
                Ok(s) => {
                    let verdict = classify(&s, &self.scfg, baseline);
                    self.recorder.record(s, verdict);
                    if let Some(v) = verdict {
                        return Ok(Err(Fault::Health(v)));
                    }
                    self.bursts = 0;
                }
                Err(e) => return Ok(Err(e.into())),
            }
            // Load-imbalance surfaces through the fault-handled path like
            // every other collective — a transient CommError here rolls
            // back instead of panicking mid-campaign.
            match sim.load_imbalance(comm) {
                Ok((ratio, _)) => self.peak_imbalance = self.peak_imbalance.max(ratio),
                Err(e) => return Ok(Err(e.into())),
            }
        }
        if self.interval > 0 && step.is_multiple_of(self.interval) {
            if let Err(f) = self.take_checkpoint(comm, sim)? {
                return Ok(Err(f));
            }
        }
        let t0 = Instant::now();
        if let Err(e) = sim.step_with(comm, |f, g, s| drive(f, g, s)) {
            return Ok(Err(e.into()));
        }
        self.step_secs = ewma(self.step_secs, t0.elapsed().as_secs_f64());
        self.steps_run += 1;
        Ok(Ok(()))
    }

    /// One rung of the escalation ladder: a Marder burst sized
    /// `marder_passes << bursts`, then an immediate re-check. Every rank
    /// executes the identical sequence (the verdict that got us here is
    /// global), so the collectives stay in lockstep. Returns whether the
    /// re-check came back clean.
    fn try_heal(
        &mut self,
        comm: &mut Comm,
        sim: &mut DistributedSim,
        v: HealthVerdict,
    ) -> Result<bool, CommError> {
        let passes = burst_passes(self.scfg.marder_passes, self.bursts);
        self.bursts += 1;
        let (pe, pb) = match v.kind {
            AnomalyKind::GaussLawResidual => (passes, 0),
            AnomalyKind::DivBResidual => (0, passes),
            _ => (0, 0),
        };
        sim.marder_burst(comm, pe, pb)?;
        let baseline = self.baseline.map(|(e0, n0)| (e0, n0 as f64));
        let s = global_sample(comm, sim, &self.scfg)?;
        let verdict = classify(&s, &self.scfg, baseline);
        self.recorder.record(s, verdict);
        let rms_after = match v.kind {
            AnomalyKind::DivBResidual => s.div_b_rms(),
            _ => s.div_e_rms(),
        };
        let healed = verdict.is_none();
        if healed {
            self.bursts = 0;
        }
        self.heals.push(HealEvent {
            step: v.step,
            kind: v.kind,
            passes,
            rms_before: v.metric,
            rms_after,
            healed,
        });
        append_log(
            &self.cfg.checkpoint_dir,
            self.rank,
            &format!(
                "step={} burst={} kind={} passes={passes} rms={:.3e}->{:.3e} healed={}",
                v.step,
                self.bursts,
                v.kind.as_str(),
                v.metric,
                rms_after,
                healed
            ),
        );
        Ok(healed)
    }

    /// Write a checkpoint generation, confirm all ranks wrote theirs
    /// (sharing measured dump/step costs for the auto interval), cache the
    /// bytes, then prune old generations beyond `keep_checkpoints`. Write
    /// failures are permanent (rollback cannot fix a dead disk);
    /// confirmation failures are recoverable comm faults.
    fn take_checkpoint(
        &mut self,
        comm: &mut Comm,
        sim: &DistributedSim,
    ) -> Result<Result<(), Fault>, CampaignError> {
        let path = checkpoint_path(&self.cfg.checkpoint_dir, sim.step_count, self.rank);
        let t0 = Instant::now();
        let bytes = dump_rank_bytes(sim, self.cfg.compress).map_err(CampaignError::Checkpoint)?;
        write_bytes_atomic(&path, &bytes, self.cfg.write_throttle_bps)
            .map_err(CampaignError::Checkpoint)?;
        self.ckpt_secs = ewma(self.ckpt_secs, t0.elapsed().as_secs_f64());
        // One collective confirms every rank wrote this generation *and*
        // carries the measured (dump cost, step time) so each rank
        // max-reduces to identical values — the auto interval then
        // resolves the same everywhere without extra traffic.
        let gathered = match comm.allgather((
            sim.step_count,
            self.ckpt_secs.to_bits(),
            self.step_secs.to_bits(),
        )) {
            Ok(g) => g,
            Err(e) => return Ok(Err(e.into())),
        };
        if gathered.iter().any(|&(s, _, _)| s != sim.step_count) {
            let steps: Vec<u64> = gathered.iter().map(|&(s, _, _)| s).collect();
            let first_bad = steps
                .iter()
                .copied()
                .find(|&s| s != sim.step_count)
                .unwrap_or(0);
            return Ok(Err(Fault::Health(HealthVerdict {
                kind: AnomalyKind::Confirmation,
                metric: first_bad as f64,
                threshold: sim.step_count as f64,
                step: sim.step_count,
            })));
        }
        self.cache = Some((sim.step_count, bytes));
        if matches!(self.cfg.checkpoint, CheckpointPolicy::Auto { .. }) {
            let delta = gathered
                .iter()
                .map(|&(_, d, _)| f64::from_bits(d))
                .fold(0.0, f64::max);
            let step_time = gathered
                .iter()
                .map(|&(_, _, t)| f64::from_bits(t))
                .fold(0.0, f64::max);
            self.interval = self.cfg.checkpoint.resolve(delta, step_time);
        }
        // All ranks confirmed: older generations beyond the keep window
        // are now garbage.
        let own = list_own_checkpoints(&self.cfg.checkpoint_dir, self.rank)?;
        if own.len() > self.cfg.keep_checkpoints {
            for (_, p) in &own[..own.len() - self.cfg.keep_checkpoints] {
                let _ = std::fs::remove_file(p);
            }
        }
        Ok(Ok(()))
    }

    /// Rendezvous, rediscover checkpoints from disk, agree on the newest
    /// generation valid on every rank, and reload it — from the in-memory
    /// cache when it holds the chosen generation, from disk otherwise.
    /// Returns the restored sim and its step.
    fn rollback(
        &mut self,
        comm: &mut Comm,
        sim: &DistributedSim,
    ) -> Result<(DistributedSim, u64), CampaignError> {
        comm.recover().map_err(CampaignError::Comm)?;
        let n_pipe = n_pipelines_of(sim);
        // Validate every on-disk generation by fully loading it — CRC
        // failures (torn writes, bit rot) disqualify a generation here,
        // loudly.
        let mut valid_steps = Vec::new();
        for (step, path) in list_own_checkpoints(&self.cfg.checkpoint_dir, self.rank)? {
            if load_rank_from_path(sim.spec.clone(), self.rank, n_pipe, &path).is_ok() {
                valid_steps.push(step);
            }
        }
        let all: Vec<Vec<u64>> = comm
            .allgather(valid_steps.clone())
            .map_err(CampaignError::Comm)?;
        let chosen = valid_steps
            .iter()
            .rev()
            .find(|s| all.iter().all(|ranks| ranks.contains(s)))
            .copied()
            .ok_or(CampaignError::NoCommonCheckpoint)?;
        let mut restored = match &self.cache {
            Some((step, bytes)) if *step == chosen => {
                load_rank(sim.spec.clone(), self.rank, n_pipe, &mut bytes.as_slice())
                    .map_err(CampaignError::Checkpoint)?
            }
            _ => {
                let path = checkpoint_path(&self.cfg.checkpoint_dir, chosen, self.rank);
                load_rank_from_path(sim.spec.clone(), self.rank, n_pipe, &path)
                    .map_err(CampaignError::Checkpoint)?
            }
        };
        // Knobs that live outside the dump carry over from the template
        // sim (the sponge shapes the physics; layout/kernel are bit-exact
        // performance choices).
        restored.sponge = sim.sponge;
        restored.set_layout(sim.layout());
        restored.set_kernel(sim.kernel());
        // Everyone must resume from the same generation.
        let confirm = comm.allgather(chosen).map_err(CampaignError::Comm)?;
        if confirm.iter().any(|&s| s != chosen) {
            return Err(CampaignError::NoCommonCheckpoint);
        }
        Ok((restored, chosen))
    }

    /// Budget exhausted or the world is unreachable: write a best-effort
    /// partial dump and finish as `Degraded`.
    fn degrade(
        self,
        sim: DistributedSim,
        at_step: u64,
        attempt: u32,
        cause: &str,
    ) -> (DistributedSim, CampaignOutcome) {
        let partial = self
            .cfg
            .checkpoint_dir
            .join(format!("partial_r{:04}.vpic", self.rank));
        if let Ok(bytes) = dump_rank_bytes(&sim, self.cfg.compress) {
            let _ = write_bytes_atomic(&partial, &bytes, self.cfg.write_throttle_bps);
        }
        // The flight recorder is the post-mortem: the last N health
        // samples (and verdicts) as structured JSON, best-effort.
        let flight = self
            .cfg
            .checkpoint_dir
            .join(format!("flight_r{:04}.json", self.rank));
        let _ = self.recorder.write_json(&flight);
        append_log(
            &self.cfg.checkpoint_dir,
            self.rank,
            &format!("step={at_step} attempt={attempt} cause=\"{cause}\" action=degraded"),
        );
        let end = CampaignEnd::Degraded {
            at_step,
            partial_dump: partial,
            flight_recorder: flight,
        };
        let outcome = self.finish(end);
        (sim, outcome)
    }

    fn finish(self, end: CampaignEnd) -> CampaignOutcome {
        CampaignOutcome {
            rank: self.rank,
            end,
            steps_run: self.steps_run,
            recoveries: self.recoveries,
            heals: self.heals,
            peak_imbalance: self.peak_imbalance,
            effective_interval: self.interval,
            finished_by: std::thread::current().id(),
        }
    }

    /// Hot-spare hand-off: surrender this worker's endpoint, spawn the
    /// replacement thread, and block until it finishes the campaign (or
    /// degrades). The victim thread never steps the sim again; it only
    /// reclaims the endpoint afterwards so post-campaign collectives still
    /// run from the original worker.
    fn hand_off(
        mut self,
        comm: &mut Comm,
        sim: DistributedSim,
        at_step: u64,
        attempt: u32,
        fault: Fault,
        drive: &impl CampaignDrive,
    ) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
        append_log(
            &self.cfg.checkpoint_dir,
            self.rank,
            &format!("step={at_step} attempt={attempt} cause=\"{fault}\" action=hot_spare"),
        );
        // The dead rank's memory — including its checkpoint cache — is
        // considered lost; the spare must restore from disk.
        self.cache = None;
        let ep = comm.surrender();
        let cause = fault.to_string();
        // Scoped so the replacement thread can borrow the drive hook.
        let joined = std::thread::scope(|s| {
            let spare = s.spawn(move || {
                let mut comm = Comm::adopt(ep);
                let result = self.spare_main(&mut comm, sim, at_step, attempt, &cause, drive);
                (result, comm.surrender())
            });
            spare.join()
        });
        match joined {
            Ok((result, ep)) => {
                comm.readopt(ep);
                result
            }
            Err(_) => Err(CampaignError::HotSpare(
                "replacement worker thread panicked".into(),
            )),
        }
    }

    /// Entry point of the replacement thread: rendezvous with the
    /// survivors, restore the victim's shard from the newest agreed
    /// checkpoint, and drive the campaign to its end.
    fn spare_main(
        mut self,
        comm: &mut Comm,
        sim: DistributedSim,
        at_step: u64,
        attempt: u32,
        cause: &str,
        drive: &impl CampaignDrive,
    ) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
        match self.rollback(comm, &sim) {
            Ok((restored, restored_step)) => {
                self.bursts = 0;
                append_log(
                    &self.cfg.checkpoint_dir,
                    self.rank,
                    &format!(
                        "step={at_step} attempt={attempt} cause=\"{cause}\" \
                         restored_step={restored_step} hot_spare=1"
                    ),
                );
                self.recoveries.push(RecoveryEvent {
                    at_step,
                    attempt,
                    cause: cause.to_string(),
                    restored_step,
                    hot_spare: true,
                });
                self.drive(comm, restored, drive)
            }
            Err(CampaignError::Comm(_)) | Err(CampaignError::NoCommonCheckpoint) => {
                Ok(self.degrade(sim, at_step, attempt, cause))
            }
            Err(e) => Err(e),
        }
    }

    /// The campaign main loop; consumes the runner so it can migrate into
    /// a replacement thread on hot-spare hand-off.
    fn drive(
        mut self,
        comm: &mut Comm,
        mut sim: DistributedSim,
        drive: &impl CampaignDrive,
    ) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
        loop {
            if sim.step_count >= self.cfg.steps {
                let outcome = self.finish(CampaignEnd::Completed);
                return Ok((sim, outcome));
            }
            let step = sim.step_count;
            let mut fault = match self.iterate(comm, &mut sim, drive)? {
                Ok(()) => continue,
                Err(f) => f,
            };

            // Escalation ladder, rung 2: a repairable numerical verdict
            // (divergence residual) gets an in-place Marder-cleaning burst
            // before we spend a recovery attempt. Pass counts escalate
            // geometrically per consecutive burst; once the budget is
            // spent — or the anomaly is structural (NaN, energy blow-up,
            // drift) — fall through to rollback.
            if let Fault::Health(v) = &fault {
                let v = *v;
                if v.kind.repairable() && self.bursts < self.scfg.max_marder_bursts {
                    match self.try_heal(comm, &mut sim, v) {
                        // Healed or not, re-enter the loop: the next
                        // health gate re-samples, and an unhealed residual
                        // re-faults here with an escalated pass count.
                        Ok(_) => continue,
                        // A burst collective failing is a comm fault; let
                        // the ordinary recovery machinery handle it.
                        Err(e) => fault = Fault::Comm(e),
                    }
                }
            }

            let attempt = self.recoveries.len() as u32 + 1;
            if attempt > self.cfg.max_recoveries {
                return Ok(self.degrade(sim, step, attempt, &fault.to_string()));
            }
            // A rank the fault plan killed hands its endpoint to a hot
            // spare when configured to; every other fault (or mode) takes
            // the whole-world rollback path.
            let own_kill = matches!(
                fault,
                Fault::Comm(CommError::Killed { rank, .. }) if rank == self.rank
            );
            if own_kill && self.cfg.recovery == RecoveryMode::HotSpare {
                return self.hand_off(comm, sim, step, attempt, fault, drive);
            }
            match self.rollback(comm, &sim) {
                Ok((restored, restored_step)) => {
                    sim = restored;
                    // A fresh (certified-clean) generation starts the
                    // burst budget over.
                    self.bursts = 0;
                    append_log(
                        &self.cfg.checkpoint_dir,
                        self.rank,
                        &format!(
                            "step={step} attempt={attempt} cause=\"{fault}\" \
                             restored_step={restored_step}"
                        ),
                    );
                    self.recoveries.push(RecoveryEvent {
                        at_step: step,
                        attempt,
                        cause: fault.to_string(),
                        restored_step,
                        hot_spare: false,
                    });
                }
                // The rendezvous failed or no generation is valid
                // everywhere: the world is splitting up. Degrading (with a
                // partial dump) beats erroring out — peers waiting on us
                // will time out and degrade the same way.
                Err(CampaignError::Comm(_)) | Err(CampaignError::NoCommonCheckpoint) => {
                    return Ok(self.degrade(sim, step, attempt, &fault.to_string()));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Drive `sim` to `cfg.steps` with periodic checkpoints, health checks and
/// automatic recovery; returns the final simulation state (the last good
/// state, on degradation) alongside the outcome. See the module docs for
/// the protocol.
pub fn run_campaign(
    comm: &mut Comm,
    sim: DistributedSim,
    cfg: &CampaignConfig,
) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
    run_campaign_with(comm, sim, cfg, |_, _, _| {})
}

/// [`run_campaign`] with an external current drive (e.g. a laser antenna)
/// applied through [`DistributedSim::step_with`] on every step — including
/// replayed steps after a rollback, so the drive history is identical on
/// the recovery path.
pub fn run_campaign_with(
    comm: &mut Comm,
    sim: DistributedSim,
    cfg: &CampaignConfig,
    drive: impl CampaignDrive,
) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
    let runner = prepare(comm, &sim, cfg)?;
    runner.drive(comm, sim, &drive)
}

/// Entry point for a *respawned process* taking over a dead rank's seat in
/// a running campaign (socket transport). `sim` is the rank's pristine
/// deck-built shard, used only as a template: the runner immediately
/// rendezvouses with the survivors ([`Comm::recover`]), restores the
/// newest checkpoint generation valid on every rank from disk (a rejoiner
/// has no in-memory cache), and drives the campaign to its end.
///
/// Caveats for bit-exact convergence with an uninterrupted run: use a
/// `Fixed` checkpoint policy and `health_interval = 0` — a rejoiner's
/// measured-cost EWMAs and health baseline start empty, so cadences that
/// resolve from them would diverge from the survivors'.
pub fn rejoin_campaign(
    comm: &mut Comm,
    sim: DistributedSim,
    cfg: &CampaignConfig,
    drive: impl CampaignDrive,
) -> Result<(DistributedSim, CampaignOutcome), CampaignError> {
    let runner = prepare(comm, &sim, cfg)?;
    let at_step = sim.step_count;
    runner.spare_main(comm, sim, at_step, 1, "process respawn rejoin", &drive)
}

fn prepare(
    comm: &mut Comm,
    sim: &DistributedSim,
    cfg: &CampaignConfig,
) -> Result<Runner, CampaignError> {
    std::fs::create_dir_all(&cfg.checkpoint_dir)?;
    if let Some(t) = cfg.op_timeout {
        comm.set_op_timeout(t);
    }
    // A CFL violation can only come from a bad deck; catching it here
    // (identically on every rank — the grid is replicated config) beats
    // watching the fields blow up at step 3.
    if let Err(v) = validate_cfl(&sim.grid) {
        return Err(CampaignError::Config(v));
    }
    let scfg = cfg.effective_sentinel();
    Ok(Runner {
        rank: sim.rank,
        baseline: None,
        recoveries: Vec::new(),
        steps_run: 0,
        interval: cfg.checkpoint.resolve(0.0, 0.0),
        ckpt_secs: 0.0,
        step_secs: 0.0,
        cache: None,
        recorder: FlightRecorder::new(scfg.recorder_len),
        scfg,
        corruption: cfg.corruption.clone(),
        bursts: 0,
        heals: Vec::new(),
        peak_imbalance: 0.0,
        cfg: cfg.clone(),
    })
}
