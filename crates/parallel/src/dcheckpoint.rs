//! Distributed restart dumps: each rank serializes its own domain (fields
//! + species) with a topology header, so a run can be stopped and resumed
//! with the same decomposition — how VPIC's trillion-particle campaigns
//! survived Roadrunner's mean time between interrupts.

use crate::decomposition::DomainSpec;
use crate::dsim::DistributedSim;
use std::io::{self, Read, Write};
use vpic_core::particle::Particle;
use vpic_core::species::Species;

const MAGIC: &[u8; 8] = b"VPICRD01";

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Serialize one rank's state. The `spec` is *not* written (the restart
/// must be constructed with the same [`DomainSpec`]); a fingerprint of it
/// is stored and checked so mismatched restarts fail loudly.
pub fn save_rank(sim: &DistributedSim, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w_u32(w, sim.rank as u32)?;
    w_u64(w, spec_fingerprint(&sim.spec))?;
    w_u64(w, sim.step_count)?;
    w_u64(w, sim.migrated)?;
    let f = &sim.fields;
    for arr in [&f.ex, &f.ey, &f.ez, &f.cbx, &f.cby, &f.cbz, &f.jx, &f.jy, &f.jz, &f.rho] {
        w_u64(w, arr.len() as u64)?;
        for &v in arr.iter() {
            w_f32(w, v)?;
        }
    }
    w_u32(w, sim.species.len() as u32)?;
    for sp in &sim.species {
        let name = sp.name.as_bytes();
        w_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        w_f32(w, sp.q)?;
        w_f32(w, sp.m)?;
        w_u32(w, sp.sort_interval as u32)?;
        w_u64(w, sp.particles.len() as u64)?;
        for p in &sp.particles {
            for v in [p.dx, p.dy, p.dz] {
                w_f32(w, v)?;
            }
            w_u32(w, p.i)?;
            for v in [p.ux, p.uy, p.uz, p.w] {
                w_f32(w, v)?;
            }
        }
    }
    Ok(())
}

/// Restore one rank from a dump made with the same `spec` and rank id.
pub fn load_rank(
    spec: DomainSpec,
    rank: usize,
    n_pipelines: usize,
    r: &mut impl Read,
) -> io::Result<DistributedSim> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a VPICRD01 dump"));
    }
    let saved_rank = r_u32(r)? as usize;
    if saved_rank != rank {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("dump belongs to rank {saved_rank}, not {rank}"),
        ));
    }
    let fp = r_u64(r)?;
    if fp != spec_fingerprint(&spec) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "domain spec mismatch"));
    }
    let step_count = r_u64(r)?;
    let migrated = r_u64(r)?;
    let mut sim = DistributedSim::new(spec, rank, n_pipelines);
    sim.step_count = step_count;
    sim.migrated = migrated;
    let n = sim.grid.n_voxels();
    {
        let f = &mut sim.fields;
        for arr in [
            &mut f.ex,
            &mut f.ey,
            &mut f.ez,
            &mut f.cbx,
            &mut f.cby,
            &mut f.cbz,
            &mut f.jx,
            &mut f.jy,
            &mut f.jz,
            &mut f.rho,
        ] {
            let len = r_u64(r)? as usize;
            if len != n {
                // Never allocate from an untrusted length header.
                return Err(io::Error::new(io::ErrorKind::InvalidData, "field size mismatch"));
            }
            for v in arr.iter_mut() {
                *v = r_f32(r)?;
            }
        }
    }
    let n_species = r_u32(r)? as usize;
    if n_species > 1024 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible species count"));
    }
    for _ in 0..n_species {
        let name_len = r_u32(r)? as usize;
        if name_len > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad species name"))?;
        let q = r_f32(r)?;
        let m = r_f32(r)?;
        let sort_interval = r_u32(r)? as usize;
        let count = r_u64(r)? as usize;
        let mut sp = Species::new(name, q, m).with_sort_interval(sort_interval);
        sp.particles.reserve_exact(count.min(1 << 20));
        for _ in 0..count {
            let dx = r_f32(r)?;
            let dy = r_f32(r)?;
            let dz = r_f32(r)?;
            let i = r_u32(r)?;
            let ux = r_f32(r)?;
            let uy = r_f32(r)?;
            let uz = r_f32(r)?;
            let w = r_f32(r)?;
            if i as usize >= n {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "voxel out of range"));
            }
            sp.particles.push(Particle { dx, dy, dz, i, ux, uy, uz, w });
        }
        sim.add_species(sp);
    }
    Ok(sim)
}

/// Cheap structural fingerprint of a [`DomainSpec`] (FNV over its fields).
pub fn spec_fingerprint(spec: &DomainSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(spec.global_cells.0 as u64);
    mix(spec.global_cells.1 as u64);
    mix(spec.global_cells.2 as u64);
    mix(spec.cell.0.to_bits() as u64);
    mix(spec.cell.1.to_bits() as u64);
    mix(spec.cell.2.to_bits() as u64);
    mix(spec.dt.to_bits() as u64);
    for d in spec.topo.dims {
        mix(d as u64);
    }
    for p in spec.topo.periodic {
        mix(p as u64);
    }
    for bc in spec.global_bc {
        mix(bc as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::maxwellian::Momentum;

    fn spec() -> DomainSpec {
        DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, 2)
    }

    #[test]
    fn distributed_restart_continues_identically() {
        // Run 2 ranks, checkpoint mid-flight, restore, and verify the
        // restored world produces identical state to the uninterrupted one.
        let (results, _) = nanompi::run(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 3, 1.0, 8, Momentum::thermal(0.08));
            for _ in 0..4 {
                sim.step(comm);
            }
            let mut dump = Vec::new();
            save_rank(&sim, &mut dump).unwrap();
            let mut restored = load_rank(spec(), comm.rank(), 1, &mut dump.as_slice()).unwrap();
            assert_eq!(restored.step_count, sim.step_count);
            for _ in 0..4 {
                sim.step(comm);
                restored.step(comm);
            }
            (
                sim.species[0].particles.clone(),
                restored.species[0].particles.clone(),
                sim.fields.ey.clone(),
                restored.fields.ey.clone(),
            )
        });
        for (p_orig, p_rest, f_orig, f_rest) in results {
            assert_eq!(p_orig, p_rest);
            assert_eq!(f_orig, f_rest);
        }
    }

    #[test]
    fn wrong_rank_or_spec_rejected() {
        let (results, _) = nanompi::run(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            sim.add_species(Species::new("e", -1.0, 1.0));
            let mut dump = Vec::new();
            save_rank(&sim, &mut dump).unwrap();
            let wrong_rank = load_rank(spec(), 1 - comm.rank(), 1, &mut dump.as_slice());
            let mut other = spec();
            other.global_cells = (16, 4, 4);
            let wrong_spec = load_rank(other, comm.rank(), 1, &mut dump.as_slice());
            (wrong_rank.is_err(), wrong_spec.is_err())
        });
        for (a, b) in results {
            assert!(a && b);
        }
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let a = spec_fingerprint(&spec());
        let mut s2 = spec();
        s2.dt = 0.11;
        assert_ne!(a, spec_fingerprint(&s2));
        let mut s3 = spec();
        s3.global_cells.0 = 16;
        assert_ne!(a, spec_fingerprint(&s3));
        assert_eq!(a, spec_fingerprint(&spec()));
    }
}
