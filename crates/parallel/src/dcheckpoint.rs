//! Distributed restart dumps: each rank serializes its own domain
//! (fields and species) with a topology header, so a run can be stopped
//! and resumed
//! with the same decomposition — how VPIC's trillion-particle campaigns
//! survived Roadrunner's mean time between interrupts.
//!
//! The v3 format (magic `VPICRD03`) reuses the hardened section framing
//! from `vpic_core::checkpoint`: after the magic and version words, the
//! header is a plain length-prefixed CRC-32-checked section, while the
//! field and species payloads go through the *encoded* section framing,
//! which can byte-shuffle + delta + RLE-compress the payload when that
//! makes it smaller. Truncation and bit rot are detected at load time
//! with a typed [`CheckpointError`]. [`save_rank_to_path`] writes through
//! a buffered writer to a temp file and renames it into place, keeping the
//! previous good dump intact if the run dies mid-write, and
//! [`write_bytes_atomic`] does the same for a pre-serialized dump with
//! optional write-throttling so restart I/O does not monopolise the
//! filesystem bandwidth shared with the rest of the campaign.

use crate::decomposition::DomainSpec;
use crate::dsim::DistributedSim;
use std::io::{self, Read, Write};
use std::path::Path;
use vpic_core::checkpoint::{
    decode_fields, decode_sim_config, decode_species, encode_fields, encode_sim_config,
    encode_species, read_section, read_section_encoded, write_section, write_section_encoded,
    CheckpointError, PayloadReader, PayloadWriter,
};

const MAGIC: &[u8; 8] = b"VPICRD03";
const VERSION: u32 = 3;

/// Chunk size for throttled writes: small enough that pacing sleeps are
/// fine-grained, large enough to amortise syscall cost.
const THROTTLE_CHUNK: usize = 64 * 1024;

/// Serialize one rank's state with compression enabled. The `spec` is
/// *not* written (the restart must be constructed with the same
/// [`DomainSpec`]); a fingerprint of it is stored and checked so
/// mismatched restarts fail loudly.
pub fn save_rank(sim: &DistributedSim, w: &mut impl Write) -> Result<(), CheckpointError> {
    save_rank_with(sim, w, true)
}

/// Serialize one rank's state, choosing whether the field and species
/// sections may be delta+RLE compressed (`compress = false` forces raw
/// encoding; either way the load path is identical).
pub fn save_rank_with(
    sim: &DistributedSim,
    w: &mut impl Write,
    compress: bool,
) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let mut h = PayloadWriter::new();
    h.u32(sim.rank as u32);
    h.u64(spec_fingerprint(&sim.spec));
    h.u64(sim.step_count);
    h.u64(sim.migrated);
    write_section(w, &h.finish())?;
    write_section_encoded(w, &encode_fields(&sim.fields), compress)?;
    write_section_encoded(w, &encode_species(&sim.species), compress)?;
    write_section(w, &encode_sim_config(&sim.config))?;
    Ok(())
}

/// Serialize one rank's state to an in-memory buffer, for callers that
/// cache the newest validated dump or throttle the disk write separately
/// (see [`write_bytes_atomic`]).
pub fn dump_rank_bytes(sim: &DistributedSim, compress: bool) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = Vec::new();
    save_rank_with(sim, &mut buf, compress)?;
    Ok(buf)
}

/// Restore one rank from a dump made with the same `spec` and rank id.
pub fn load_rank(
    spec: DomainSpec,
    rank: usize,
    n_pipelines: usize,
    r: &mut impl Read,
) -> Result<DistributedSim, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| CheckpointError::BadMagic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut vb = [0u8; 4];
    r.read_exact(&mut vb)
        .map_err(|_| CheckpointError::Truncated { section: "version" })?;
    let version = u32::from_le_bytes(vb);
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }

    let header = read_section(r, "header")?;
    let mut hr = PayloadReader::new(&header, "header");
    let saved_rank = hr.u32()? as u64;
    if saved_rank != rank as u64 {
        return Err(CheckpointError::RankMismatch {
            expected: rank as u64,
            got: saved_rank,
        });
    }
    let fp = hr.u64()?;
    let expected_fp = spec_fingerprint(&spec);
    if fp != expected_fp {
        return Err(CheckpointError::SpecMismatch {
            expected: expected_fp,
            got: fp,
        });
    }
    let step_count = hr.u64()?;
    let migrated = hr.u64()?;
    hr.done()?;

    let mut sim = DistributedSim::new(spec, rank, n_pipelines);
    sim.step_count = step_count;
    sim.migrated = migrated;
    let n = sim.grid.n_voxels();

    let fields_payload = read_section_encoded(r, "fields")?;
    decode_fields(&fields_payload, n, &mut sim.fields)?;

    let species_payload = read_section_encoded(r, "species")?;
    for sp in decode_species(&species_payload, n)? {
        sim.add_species(sp);
    }

    let config_payload = read_section(r, "config")?;
    sim.config = decode_sim_config(&config_payload)?;
    Ok(sim)
}

/// Atomically write one rank's restart dump to `path` (buffered write to a
/// `.tmp` sibling, fsync, rename).
pub fn save_rank_to_path(sim: &DistributedSim, path: &Path) -> Result<(), CheckpointError> {
    let bytes = dump_rank_bytes(sim, true)?;
    write_bytes_atomic(path, &bytes, None)
}

/// Atomically write a pre-serialized dump to `path`: chunked write to a
/// `.tmp` sibling, fsync, rename. When `throttle_bps` is set the write is
/// paced to at most that many bytes per second by sleeping between 64 KiB
/// chunks, bounding the instantaneous filesystem bandwidth a checkpoint
/// can steal from the rest of the machine.
pub fn write_bytes_atomic(
    path: &Path,
    bytes: &[u8],
    throttle_bps: Option<u64>,
) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        match throttle_bps {
            None | Some(0) => w.write_all(bytes)?,
            Some(bps) => {
                for chunk in bytes.chunks(THROTTLE_CHUNK) {
                    w.write_all(chunk)?;
                    let pace = std::time::Duration::from_secs_f64(chunk.len() as f64 / bps as f64);
                    std::thread::sleep(pace);
                }
            }
        }
        let file = w
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load one rank's restart dump from `path`.
pub fn load_rank_from_path(
    spec: DomainSpec,
    rank: usize,
    n_pipelines: usize,
    path: &Path,
) -> Result<DistributedSim, CheckpointError> {
    let file = std::fs::File::open(path)?;
    let mut r = io::BufReader::new(file);
    load_rank(spec, rank, n_pipelines, &mut r)
}

/// Cheap structural fingerprint of a [`DomainSpec`] (FNV over its fields).
pub fn spec_fingerprint(spec: &DomainSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(spec.global_cells.0 as u64);
    mix(spec.global_cells.1 as u64);
    mix(spec.global_cells.2 as u64);
    mix(spec.cell.0.to_bits() as u64);
    mix(spec.cell.1.to_bits() as u64);
    mix(spec.cell.2.to_bits() as u64);
    mix(spec.dt.to_bits() as u64);
    for d in spec.topo.dims {
        mix(d as u64);
    }
    for p in spec.topo.periodic {
        mix(p as u64);
    }
    for bc in spec.global_bc {
        mix(bc as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::maxwellian::Momentum;
    use vpic_core::species::Species;

    fn spec() -> DomainSpec {
        DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, 2)
    }

    /// A 2-rank world with a few steps of real plasma history on each rank.
    fn make_dumps() -> Vec<Vec<u8>> {
        let (results, _) = nanompi::run_expect(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 3, 1.0, 8, Momentum::thermal(0.08));
            for _ in 0..4 {
                sim.step(comm).unwrap();
            }
            let mut dump = Vec::new();
            save_rank(&sim, &mut dump).unwrap();
            dump
        });
        results
    }

    #[test]
    fn distributed_restart_continues_identically() {
        // Run 2 ranks, checkpoint mid-flight, restore, and verify the
        // restored world produces identical state to the uninterrupted one.
        let (results, _) = nanompi::run_expect(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 3, 1.0, 8, Momentum::thermal(0.08));
            for _ in 0..4 {
                sim.step(comm).unwrap();
            }
            let mut dump = Vec::new();
            save_rank(&sim, &mut dump).unwrap();
            let mut restored = load_rank(spec(), comm.rank(), 1, &mut dump.as_slice()).unwrap();
            assert_eq!(restored.step_count, sim.step_count);
            for _ in 0..4 {
                sim.step(comm).unwrap();
                restored.step(comm).unwrap();
            }
            (
                sim.species[0].to_particles(),
                restored.species[0].to_particles(),
                sim.fields.ey.clone(),
                restored.fields.ey.clone(),
            )
        });
        for (p_orig, p_rest, f_orig, f_rest) in results {
            assert_eq!(p_orig, p_rest);
            assert_eq!(f_orig, f_rest);
        }
    }

    #[test]
    fn wrong_rank_or_spec_rejected() {
        let (results, _) = nanompi::run_expect(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            sim.add_species(Species::new("e", -1.0, 1.0));
            let mut dump = Vec::new();
            save_rank(&sim, &mut dump).unwrap();
            let wrong_rank = load_rank(spec(), 1 - comm.rank(), 1, &mut dump.as_slice());
            let mut other = spec();
            other.global_cells = (16, 4, 4);
            let wrong_spec = load_rank(other, comm.rank(), 1, &mut dump.as_slice());
            (
                matches!(wrong_rank, Err(CheckpointError::RankMismatch { .. })),
                matches!(wrong_spec, Err(CheckpointError::SpecMismatch { .. })),
            )
        });
        for (a, b) in results {
            assert!(a && b);
        }
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let a = spec_fingerprint(&spec());
        let mut s2 = spec();
        s2.dt = 0.11;
        assert_ne!(a, spec_fingerprint(&s2));
        let mut s3 = spec();
        s3.global_cells.0 = 16;
        assert_ne!(a, spec_fingerprint(&s3));
        assert_eq!(a, spec_fingerprint(&spec()));
    }

    #[test]
    fn roundtrip_over_many_seeds_is_exact() {
        // Property-style: a save/load round trip must be the identity on
        // state for a spread of particle loadings.
        for seed in [1u64, 7, 42, 1234, 98765] {
            let (results, _) = nanompi::run_expect(2, |comm| {
                let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
                let si = sim.add_species(Species::new("e", -1.0, 1.0));
                sim.load_uniform(si, seed, 1.0, 8, Momentum::thermal(0.08));
                sim.step(comm).unwrap();
                let mut dump = Vec::new();
                save_rank(&sim, &mut dump).unwrap();
                let restored = load_rank(spec(), comm.rank(), 1, &mut dump.as_slice()).unwrap();
                assert_eq!(restored.step_count, sim.step_count);
                assert_eq!(restored.migrated, sim.migrated);
                assert_eq!(restored.species[0].store(), sim.species[0].store());
                assert_eq!(restored.fields.ex, sim.fields.ex);
                assert_eq!(restored.fields.cbz, sim.fields.cbz);
                true
            });
            assert!(results.into_iter().all(|ok| ok));
        }
    }

    #[test]
    fn truncated_dump_rejected_with_typed_error() {
        let dump = make_dumps().remove(0);
        for frac in [2, 3, 7] {
            let mut cut = dump.clone();
            cut.truncate(cut.len() / frac);
            match load_rank(spec(), 0, 1, &mut cut.as_slice()) {
                Err(CheckpointError::Truncated { .. })
                | Err(CheckpointError::CrcMismatch { .. }) => {}
                Err(e) => panic!("unexpected error for truncation: {e}"),
                Ok(_) => panic!("truncated dump accepted"),
            }
        }
    }

    #[test]
    fn flipped_byte_rejected_with_typed_error() {
        let dump = make_dumps().remove(0);
        let n = dump.len();
        // Positions past the magic+version words, spread across sections.
        for pos in [14, n / 3, n / 2, n - 20] {
            let mut bad = dump.clone();
            bad[pos] ^= 0x40;
            assert!(
                load_rank(spec(), 0, 1, &mut bad.as_slice()).is_err(),
                "bit flip at byte {pos} of {n} went undetected"
            );
        }
    }

    #[test]
    fn path_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("vpic_test_dckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (results, _) = nanompi::run_expect(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 5, 1.0, 8, Momentum::thermal(0.08));
            sim.step(comm).unwrap();
            let path = dir.join(format!("r{}.vpic", comm.rank()));
            save_rank_to_path(&sim, &path).unwrap();
            let restored = load_rank_from_path(spec(), comm.rank(), 1, &path).unwrap();
            assert!(!dir.join(format!("r{}.tmp", comm.rank())).exists());
            restored.species[0].store() == sim.species[0].store()
        });
        assert!(results.into_iter().all(|ok| ok));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_dump_is_smaller_and_restores_identically() {
        let (results, _) = nanompi::run_expect(2, |comm| {
            let mut sim = DistributedSim::new(spec(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 11, 1.0, 8, Momentum::thermal(0.08));
            for _ in 0..3 {
                sim.step(comm).unwrap();
            }
            let raw = dump_rank_bytes(&sim, false).unwrap();
            let packed = dump_rank_bytes(&sim, true).unwrap();
            let restored = load_rank(spec(), comm.rank(), 1, &mut packed.as_slice()).unwrap();
            assert_eq!(restored.species[0].store(), sim.species[0].store());
            assert_eq!(restored.fields.ex, sim.fields.ex);
            assert_eq!(restored.fields.cby, sim.fields.cby);
            (raw.len(), packed.len())
        });
        for (raw, packed) in results {
            assert!(
                packed < raw,
                "compressed dump ({packed} B) not smaller than raw ({raw} B)"
            );
        }
    }

    #[test]
    fn throttled_write_paces_and_lands_intact() {
        let dir = std::env::temp_dir().join(format!("vpic_test_throttle_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bytes: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
        let path = dir.join("throttled.vpic");
        let t0 = std::time::Instant::now();
        // 4 MiB/s over 256 KiB = at least ~62 ms of pacing sleeps.
        write_bytes_atomic(&path, &bytes, Some(4 * 1024 * 1024)).unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(50),
            "throttle did not pace the write: {elapsed:?}"
        );
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
