//! Ghost-plane field exchange between adjacent domains.
//!
//! The core field solver leaves `Exchange` faces untouched; after every
//! update this module fills them from the neighboring rank, replicating
//! exactly the planes the periodic sync would have copied locally:
//!
//! * after an `E` update: each component node-registered along an exchanged
//!   axis needs its `n+1` plane from the `+axis` neighbor's plane 1;
//! * after a `B` update: the axis-normal `cB` component needs its `n+1`
//!   plane from the `+axis` neighbor's plane 1, and the transverse
//!   components need their ghost plane 0 from the `−axis` neighbor's
//!   plane `n`;
//! * after current deposition: deposits on plane `n+1` belong to the
//!   `+axis` neighbor's plane 1 and are folded (added) there.
//!
//! Planes are sent ghost-inclusive and axes processed in x→y→z order, so
//! edge/corner ghosts become correct exactly as in the sequential
//! periodic-copy argument.

use nanompi::{Comm, CommError};
use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;

const TAG_E: u64 = 0xE000;
const TAG_B_OWN: u64 = 0xB000;
const TAG_B_T: u64 = 0xB100;
const TAG_J: u64 = 0xA000;
const TAG_S_FOLD: u64 = 0x5000;
const TAG_S_HIGH: u64 = 0x5100;
const TAG_S_LOW: u64 = 0x5200;
const TAG_E_NORM: u64 = 0x5300;

/// Read the full (ghost-inclusive) plane `idx` along `axis`.
pub fn read_plane(arr: &[f32], g: &Grid, axis: usize, idx: usize) -> Vec<f32> {
    let (sx, sy, sz) = g.strides();
    let dims = [sx, sy, sz];
    let (a1, a2) = other_axes(axis);
    let mut out = Vec::with_capacity(dims[a1] * dims[a2]);
    for c2 in 0..dims[a2] {
        for c1 in 0..dims[a1] {
            let mut cs = [0usize; 3];
            cs[a1] = c1;
            cs[a2] = c2;
            cs[axis] = idx;
            out.push(arr[g.voxel(cs[0], cs[1], cs[2])]);
        }
    }
    out
}

/// Overwrite plane `idx` along `axis` with `data`.
pub fn write_plane(arr: &mut [f32], g: &Grid, axis: usize, idx: usize, data: &[f32]) {
    visit_plane(g, axis, idx, data, |slot, v| arr[slot] = v);
}

/// Add `data` into plane `idx` along `axis`.
pub fn add_plane(arr: &mut [f32], g: &Grid, axis: usize, idx: usize, data: &[f32]) {
    visit_plane(g, axis, idx, data, |slot, v| arr[slot] += v);
}

fn visit_plane(g: &Grid, axis: usize, idx: usize, data: &[f32], mut f: impl FnMut(usize, f32)) {
    let (sx, sy, sz) = g.strides();
    let dims = [sx, sy, sz];
    let (a1, a2) = other_axes(axis);
    assert_eq!(data.len(), dims[a1] * dims[a2], "plane size mismatch");
    let mut it = data.iter();
    for c2 in 0..dims[a2] {
        for c1 in 0..dims[a1] {
            let mut cs = [0usize; 3];
            cs[a1] = c1;
            cs[a2] = c2;
            cs[axis] = idx;
            f(g.voxel(cs[0], cs[1], cs[2]), *it.next().unwrap());
        }
    }
}

fn other_axes(axis: usize) -> (usize, usize) {
    match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

fn n_of(g: &Grid, axis: usize) -> usize {
    [g.nx, g.ny, g.nz][axis]
}

/// Ghost exchanger bound to a rank's face neighbors (`None` = no neighbor:
/// either a physical wall or an undecomposed axis).
#[derive(Clone, Copy, Debug)]
pub struct GhostExchanger {
    pub neighbors: [Option<usize>; 6],
}

impl GhostExchanger {
    /// Fill `E` ghost planes from neighbors (call after every `advance_e`
    /// and after manual field initialization).
    pub fn exchange_e(
        &self,
        comm: &mut Comm,
        f: &mut FieldArray,
        g: &Grid,
    ) -> Result<(), CommError> {
        for axis in 0..3 {
            let comps: [&mut Vec<f32>; 2] = match axis {
                0 => [&mut f.ey, &mut f.ez],
                1 => [&mut f.ex, &mut f.ez],
                _ => [&mut f.ex, &mut f.ey],
            };
            let n = n_of(g, axis);
            for (ci, c) in comps.into_iter().enumerate() {
                let tag = TAG_E + (axis * 4 + ci) as u64;
                if let Some(nb) = self.neighbors[axis] {
                    comm.send_vec(nb, tag, read_plane(c, g, axis, 1))?;
                }
                if let Some(nb) = self.neighbors[axis + 3] {
                    let plane: Vec<f32> = comm.recv(nb, tag)?;
                    write_plane(c, g, axis, n + 1, &plane);
                }
            }
        }
        Ok(())
    }

    /// Fill `cB` ghost planes from neighbors (call after every `advance_b`
    /// and after manual field initialization).
    pub fn exchange_b(
        &self,
        comm: &mut Comm,
        f: &mut FieldArray,
        g: &Grid,
    ) -> Result<(), CommError> {
        for axis in 0..3 {
            let n = n_of(g, axis);
            // Axis-normal component: my n+1 plane is the +neighbor's 1.
            {
                let own: &mut Vec<f32> = match axis {
                    0 => &mut f.cbx,
                    1 => &mut f.cby,
                    _ => &mut f.cbz,
                };
                let tag = TAG_B_OWN + axis as u64;
                if let Some(nb) = self.neighbors[axis] {
                    comm.send_vec(nb, tag, read_plane(own, g, axis, 1))?;
                }
                if let Some(nb) = self.neighbors[axis + 3] {
                    let plane: Vec<f32> = comm.recv(nb, tag)?;
                    write_plane(own, g, axis, n + 1, &plane);
                }
            }
            // Transverse components: my ghost 0 is the −neighbor's n.
            let comps: [&mut Vec<f32>; 2] = match axis {
                0 => [&mut f.cby, &mut f.cbz],
                1 => [&mut f.cbx, &mut f.cbz],
                _ => [&mut f.cbx, &mut f.cby],
            };
            for (ci, c) in comps.into_iter().enumerate() {
                let tag = TAG_B_T + (axis * 4 + ci) as u64;
                if let Some(nb) = self.neighbors[axis + 3] {
                    comm.send_vec(nb, tag, read_plane(c, g, axis, n))?;
                }
                if let Some(nb) = self.neighbors[axis] {
                    let plane: Vec<f32> = comm.recv(nb, tag)?;
                    write_plane(c, g, axis, 0, &plane);
                }
            }
        }
        Ok(())
    }

    /// Fold ghost-plane deposits of a node-centered scalar (e.g. `rho`)
    /// into the owning neighbor: plane `n+1` adds into the `+axis`
    /// neighbor's plane 1. Node-centered deposits never land in plane 0,
    /// so this single fold per axis suffices (same argument as `fold_j`).
    /// Call after a local `sync_rho`.
    pub fn fold_scalar(&self, comm: &mut Comm, arr: &mut [f32], g: &Grid) -> Result<(), CommError> {
        for axis in 0..3 {
            let n = n_of(g, axis);
            let tag = TAG_S_FOLD + axis as u64;
            if let Some(nb) = self.neighbors[axis + 3] {
                comm.send_vec(nb, tag, read_plane(arr, g, axis, n + 1))?;
            }
            if let Some(nb) = self.neighbors[axis] {
                let plane: Vec<f32> = comm.recv(nb, tag)?;
                add_plane(arr, g, axis, 1, &plane);
            }
        }
        Ok(())
    }

    /// Fill a scalar's high ghost plane: my `n+1` is the `+axis` neighbor's
    /// plane 1 (read by the forward gradient in `apply_marder_e`).
    pub fn exchange_scalar_high(
        &self,
        comm: &mut Comm,
        arr: &mut [f32],
        g: &Grid,
    ) -> Result<(), CommError> {
        for axis in 0..3 {
            let n = n_of(g, axis);
            let tag = TAG_S_HIGH + axis as u64;
            if let Some(nb) = self.neighbors[axis] {
                comm.send_vec(nb, tag, read_plane(arr, g, axis, 1))?;
            }
            if let Some(nb) = self.neighbors[axis + 3] {
                let plane: Vec<f32> = comm.recv(nb, tag)?;
                write_plane(arr, g, axis, n + 1, &plane);
            }
        }
        Ok(())
    }

    /// Fill a scalar's low ghost plane: my `0` is the `−axis` neighbor's
    /// plane `n` (read by the backward gradient in `apply_marder_b`).
    pub fn exchange_scalar_low(
        &self,
        comm: &mut Comm,
        arr: &mut [f32],
        g: &Grid,
    ) -> Result<(), CommError> {
        for axis in 0..3 {
            let n = n_of(g, axis);
            let tag = TAG_S_LOW + axis as u64;
            if let Some(nb) = self.neighbors[axis + 3] {
                comm.send_vec(nb, tag, read_plane(arr, g, axis, n))?;
            }
            if let Some(nb) = self.neighbors[axis] {
                let plane: Vec<f32> = comm.recv(nb, tag)?;
                write_plane(arr, g, axis, 0, &plane);
            }
        }
        Ok(())
    }

    /// Fill the axis-normal `E` component's low ghost plane (`ex` plane 0
    /// along x, …) from the `−axis` neighbor's plane `n`. The solver never
    /// reads these, but the Gauss-law divergence stencil at the first node
    /// plane does — mirroring what `sync_e` copies on locally periodic
    /// axes.
    pub fn exchange_e_normal_low(
        &self,
        comm: &mut Comm,
        f: &mut FieldArray,
        g: &Grid,
    ) -> Result<(), CommError> {
        for axis in 0..3 {
            let c: &mut Vec<f32> = match axis {
                0 => &mut f.ex,
                1 => &mut f.ey,
                _ => &mut f.ez,
            };
            let n = n_of(g, axis);
            let tag = TAG_E_NORM + axis as u64;
            if let Some(nb) = self.neighbors[axis + 3] {
                comm.send_vec(nb, tag, read_plane(c, g, axis, n))?;
            }
            if let Some(nb) = self.neighbors[axis] {
                let plane: Vec<f32> = comm.recv(nb, tag)?;
                write_plane(c, g, axis, 0, &plane);
            }
        }
        Ok(())
    }

    /// Fold ghost-deposited currents into the owning neighbor (call after
    /// `unload` + local `sync_j`).
    pub fn fold_j(&self, comm: &mut Comm, f: &mut FieldArray, g: &Grid) -> Result<(), CommError> {
        for axis in 0..3 {
            let n = n_of(g, axis);
            let comps: [&mut Vec<f32>; 2] = match axis {
                0 => [&mut f.jy, &mut f.jz],
                1 => [&mut f.jx, &mut f.jz],
                _ => [&mut f.jx, &mut f.jy],
            };
            for (ci, c) in comps.into_iter().enumerate() {
                let tag = TAG_J + (axis * 4 + ci) as u64;
                if let Some(nb) = self.neighbors[axis + 3] {
                    comm.send_vec(nb, tag, read_plane(c, g, axis, n + 1))?;
                }
                if let Some(nb) = self.neighbors[axis] {
                    let plane: Vec<f32> = comm.recv(nb, tag)?;
                    add_plane(c, g, axis, 1, &plane);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_roundtrip_and_add() {
        let g = Grid::periodic((4, 3, 2), (1.0, 1.0, 1.0), 0.1);
        let mut arr = vec![0.0f32; g.n_voxels()];
        for (v, x) in arr.iter_mut().enumerate() {
            *x = v as f32;
        }
        for axis in 0..3 {
            let plane = read_plane(&arr, &g, axis, 1);
            let mut copy = arr.clone();
            write_plane(&mut copy, &g, axis, 0, &plane);
            let back = read_plane(&copy, &g, axis, 0);
            assert_eq!(back, plane);
            add_plane(&mut copy, &g, axis, 0, &plane);
            let doubled = read_plane(&copy, &g, axis, 0);
            for (d, p) in doubled.iter().zip(plane.iter()) {
                assert_eq!(*d, 2.0 * *p);
            }
        }
    }

    #[test]
    fn exchange_matches_periodic_copy() {
        // Two ranks along x, fully wrapped: the exchange must place
        // exactly the planes a single periodic domain would copy.
        use nanompi::run_expect;
        let (results, _) = run_expect(2, |comm| {
            let g = Grid::new(
                (4, 2, 2),
                (1.0, 1.0, 1.0),
                0.1,
                [
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                ],
            );
            let mut f = FieldArray::new(&g);
            // Distinct values: rank r writes r+10+i at plane i for ey.
            for i in 1..=g.nx {
                for k in 0..g.strides().2 {
                    for j in 0..g.strides().1 {
                        f.ey[g.voxel(i, j, k)] = (comm.rank() * 100 + 10 + i) as f32;
                        f.cbx[g.voxel(i, j, k)] = (comm.rank() * 100 + 50 + i) as f32;
                        f.cby[g.voxel(i, j, k)] = (comm.rank() * 100 + 70 + i) as f32;
                    }
                }
            }
            let other = 1 - comm.rank();
            let ex = GhostExchanger {
                neighbors: [Some(other), None, None, Some(other), None, None],
            };
            ex.exchange_e(comm, &mut f, &g).unwrap();
            ex.exchange_b(comm, &mut f, &g).unwrap();
            let v_hi = g.voxel(g.nx + 1, 1, 1);
            let v_lo = g.voxel(0, 1, 1);
            (f.ey[v_hi], f.cbx[v_hi], f.cby[v_lo])
        });
        // Rank 0's n+1 ey plane = rank 1's plane 1 = 111; rank 1's = 011.
        assert_eq!(results[0].0, 111.0);
        assert_eq!(results[1].0, 11.0);
        // cbx n+1 = neighbor's plane 1 (+50).
        assert_eq!(results[0].1, 151.0);
        assert_eq!(results[1].1, 51.0);
        // cby ghost 0 = −neighbor's plane n (= 70 + 4).
        assert_eq!(results[0].2, 174.0);
        assert_eq!(results[1].2, 74.0);
    }

    #[test]
    fn duplicated_messages_do_not_perturb_exchange() {
        // The transport's per-(peer, tag) sequence dedup must absorb a
        // duplicated plane message: the exchange lands exactly the values
        // of a fault-free run, and the stray copy never satisfies a later
        // receive.
        use nanompi::{run_with_faults, FaultPlan};
        let plan = FaultPlan::new(9)
            .duplicate_message(0, 1)
            .duplicate_message(1, 2);
        let (results, _) = run_with_faults(2, Some(plan), |comm| {
            let g = Grid::new(
                (4, 2, 2),
                (1.0, 1.0, 1.0),
                0.1,
                [
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                ],
            );
            let mut f = FieldArray::new(&g);
            for i in 1..=g.nx {
                for k in 0..g.strides().2 {
                    for j in 0..g.strides().1 {
                        f.ey[g.voxel(i, j, k)] = (comm.rank() * 100 + 10 + i) as f32;
                    }
                }
            }
            let other = 1 - comm.rank();
            let ex = GhostExchanger {
                neighbors: [Some(other), None, None, Some(other), None, None],
            };
            // Two rounds: the duplicate from round one must not be
            // mistaken for round two's plane.
            ex.exchange_e(comm, &mut f, &g).unwrap();
            ex.exchange_e(comm, &mut f, &g).unwrap();
            f.ey[g.voxel(g.nx + 1, 1, 1)]
        });
        let vals: Vec<f32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, vec![111.0, 11.0]);
    }

    #[test]
    fn corrupted_plane_surfaces_typed_error_not_garbage() {
        // A corrupted payload must come back as CommError::Corrupt on the
        // receiving rank — never as silently-accepted garbage ghost data,
        // and never as a hang on either side.
        use nanompi::{run_with_faults, CommError, FaultPlan};
        use std::time::Duration;
        let plan = FaultPlan::new(9).corrupt_message(0, 1);
        let (results, _) = run_with_faults(2, Some(plan), |comm| {
            comm.set_op_timeout(Duration::from_millis(250));
            let g = Grid::new(
                (4, 2, 2),
                (1.0, 1.0, 1.0),
                0.1,
                [
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                ],
            );
            let mut f = FieldArray::new(&g);
            let other = 1 - comm.rank();
            let ex = GhostExchanger {
                neighbors: [Some(other), None, None, Some(other), None, None],
            };
            match ex.exchange_e(comm, &mut f, &g) {
                Ok(()) => false,
                Err(CommError::Corrupt { from, .. }) => {
                    assert_eq!(from, 0, "corruption was injected on rank 0's send");
                    true
                }
                // The peer bailing first can leave this rank timing out —
                // typed and bounded, which is all we require of it.
                Err(_) => false,
            }
        });
        let flags: Vec<bool> = results.into_iter().map(|r| r.unwrap()).collect();
        assert!(
            flags.iter().any(|&c| c),
            "no rank observed CommError::Corrupt: {flags:?}"
        );
    }

    #[test]
    fn scalar_exchanges_match_periodic_copies() {
        // Two ranks along x, wrapped: fold_scalar must land ghost deposits
        // exactly where a periodic sync_rho fold would, and the low/high
        // scalar exchanges must place the planes the serial mirrors copy.
        use nanompi::run_expect;
        let (results, _) = run_expect(2, |comm| {
            let g = Grid::new(
                (4, 2, 2),
                (1.0, 1.0, 1.0),
                0.1,
                [
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                ],
            );
            let mut rho = vec![0.0f32; g.n_voxels()];
            let mut err = vec![0.0f32; g.n_voxels()];
            for k in 0..g.strides().2 {
                for j in 0..g.strides().1 {
                    rho[g.voxel(g.nx + 1, j, k)] = 0.5; // ghost deposit
                    rho[g.voxel(1, j, k)] = 2.0; // own plane-1 deposit
                    for i in 1..=g.nx {
                        err[g.voxel(i, j, k)] = (comm.rank() * 100 + 10 + i) as f32;
                    }
                }
            }
            let other = 1 - comm.rank();
            let ex = GhostExchanger {
                neighbors: [Some(other), None, None, Some(other), None, None],
            };
            ex.fold_scalar(comm, &mut rho, &g).unwrap();
            ex.exchange_scalar_high(comm, &mut err, &g).unwrap();
            ex.exchange_scalar_low(comm, &mut err, &g).unwrap();
            (
                rho[g.voxel(1, 1, 1)],
                err[g.voxel(g.nx + 1, 1, 1)],
                err[g.voxel(0, 1, 1)],
            )
        });
        // Folded: own 2.0 + neighbor's ghost 0.5.
        assert_eq!(results[0].0, 2.5);
        assert_eq!(results[1].0, 2.5);
        // High ghost = +neighbor's plane 1; low ghost = −neighbor's plane n.
        assert_eq!(results[0].1, 111.0);
        assert_eq!(results[1].1, 11.0);
        assert_eq!(results[0].2, 114.0);
        assert_eq!(results[1].2, 14.0);
    }

    #[test]
    fn fold_j_adds_shared_plane_deposits() {
        use nanompi::run_expect;
        let (results, _) = run_expect(2, |comm| {
            let g = Grid::new(
                (4, 2, 2),
                (1.0, 1.0, 1.0),
                0.1,
                [
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Migrate,
                    vpic_core::grid::ParticleBc::Periodic,
                    vpic_core::grid::ParticleBc::Periodic,
                ],
            );
            let mut f = FieldArray::new(&g);
            // Both ranks deposit 1.0 on their shared-plane jy entries.
            for k in 0..g.strides().2 {
                for j in 0..g.strides().1 {
                    f.jy[g.voxel(g.nx + 1, j, k)] = 1.0; // ghost: belongs to +x nb
                    f.jy[g.voxel(1, j, k)] = 2.0; // own plane-1 deposit
                }
            }
            let other = 1 - comm.rank();
            let ex = GhostExchanger {
                neighbors: [Some(other), None, None, Some(other), None, None],
            };
            ex.fold_j(comm, &mut f, &g).unwrap();
            f.jy[g.voxel(1, 1, 1)]
        });
        assert_eq!(results, vec![3.0, 3.0]);
    }
}
