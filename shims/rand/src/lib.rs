//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! This container has no network access and no crates.io mirror, so the
//! workspace vendors the small slice of `rand` it actually uses as a
//! path dependency: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random::<f64>()` and `Rng::random_range(0..n)`.
//!
//! `SmallRng` is implemented as xoshiro256++ seeded through the
//! SplitMix64 stream, matching the algorithm rand 0.9 uses for
//! `SmallRng` on 64-bit targets, so seeded streams here reproduce the
//! upstream crate bit-for-bit for the entry points above. `f64` sampling
//! uses the standard 53-bit mantissa construction
//! `(next_u64 >> 11) * 2^-53`, and `random_range` uses Lemire's
//! widening-multiply reduction.

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`Self::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it through SplitMix64, exactly as
    /// `rand_core` does, so seeded streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (x >> (8 * i)) as u8;
            }
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step (the `rand_core` seed-expansion stream).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from raw bits via `Rng::random` (stand-in for the
/// `StandardUniform` distribution).
pub trait FromRandom {
    /// Draw one value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl FromRandom for f64 {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> f32 {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for u64 {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl FromRandom for bool {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                // Lemire widening-multiply reduction (bias < 2^-64).
                let hi = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let width = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Mirrors `rand::rngs`: the seedable small RNG.
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.9's `SmallRng` on
    /// 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * i + 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; seed_from_u64
            // never produces one, but guard direct from_seed use.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let mut same_ac = 0;
        for _ in 0..64 {
            let x: f64 = a.random();
            assert_eq!(x.to_bits(), b.random::<f64>().to_bits());
            if x == c.random::<f64>() {
                same_ac += 1;
            }
        }
        assert!(same_ac < 4, "seeds 42 and 43 should diverge");
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = r.random_range(0..13usize);
            assert!(i < 13);
            let j = r.random_range(5..=9u32);
            assert!((5..=9).contains(&j));
        }
    }

    #[test]
    fn uniform_f64_covers_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
