//! Offline stand-in for the `criterion` crate (API subset).
//!
//! This container has no network access and no crates.io mirror, so the
//! workspace vendors the slice of criterion its benches use as a path
//! dependency: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`throughput`, `bench_function`/`bench_with_input`,
//! and `Bencher::{iter, iter_batched}`.
//!
//! There is no statistical machinery: each benchmark warms up once,
//! runs a fixed number of timed iterations, and prints the mean
//! time per iteration (plus element throughput when configured). That
//! keeps `cargo bench` useful for coarse regression eyeballing while the
//! precise numbers come from the repo's own experiment binaries
//! (`e2_step_breakdown` etc.), which never depended on criterion.

use std::time::Instant;

/// Opaque black box (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by the stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Render the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine` over the configured iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total_ns += t0.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.iters as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.into_id(), b.mean_ns);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.into_id(), b.mean_ns);
        self
    }

    fn report(&self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / (mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / (mean_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean_ns:.0} ns/iter{rate}", self.name);
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Benchmark registry/driver (stateless in the stand-in).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("inc", |b| b.iter(|| calls += 1));
        assert!(calls >= 3, "routine ran {calls} times");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter_batched(
                || vec![1u64; *n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}
