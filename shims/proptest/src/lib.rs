//! Offline stand-in for the `proptest` crate (API subset).
//!
//! This container has no network access and no crates.io mirror, so the
//! workspace vendors the slice of proptest it uses as a path dependency:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `Strategy`
//! with `prop_map`, numeric range strategies, tuple strategies,
//! `collection::vec`, `sample::select` and `ProptestConfig::with_cases`.
//!
//! Unlike upstream proptest there is no shrinking: each test runs its
//! configured number of cases with inputs drawn from a *deterministic*
//! per-test seeded stream (seed = FNV-1a of the test name mixed with the
//! case index), so failures reproduce exactly on re-run. Assertion
//! failures report the case index and the generated-input message from
//! `prop_assert!`.

pub mod test_runner {
    //! Config, runner and deterministic RNG for generated cases.

    /// Test-run configuration (subset of upstream's many knobs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG driving input generation (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `0..n` (Lemire reduction; `n > 0`).
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Drives the configured number of cases for one `proptest!` test.
    pub struct TestRunner {
        config: ProptestConfig,
        name_seed: u64,
    }

    impl TestRunner {
        /// Runner for the named test under `config`.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable per-test seed base.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                name_seed: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic RNG for one case.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(self.name_seed ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
        }
    }
}

pub mod strategy {
    //! Input-generation strategies (subset of `proptest::strategy`).
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(width) as i64) as $t
                }
            }
        )*};
    }

    impl_sint_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for generated collections (half-open).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (subset of `proptest::sample`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding clones of elements of a fixed vector.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly select one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Mirrors `proptest::prelude`: glob-import in tests.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test harness: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` deterministic
/// seeded cases. `prop_assert!`-style failures abort the case with its
/// index so it can be reproduced.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {msg}",
                        stringify!($name),
                        runner.cases(),
                    );
                }
            }
        }
    )*};
}

/// Assert inside `proptest!` bodies; failures abort the current case
/// with a formatted message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assert inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                format!($($fmt)*) + &format!(" (`{lhs:?}` vs `{rhs:?}`)"),
            );
        }
    }};
}

/// Inequality assert inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?} != {:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds for every drawn case.
        #[test]
        fn ranges_in_bounds(
            a in 0usize..10,
            b in 1u8..=8,
            x in -1.5f32..2.5,
            v in prop::collection::vec(0u32..100, 2..6),
            s in prop::sample::select(vec![3i32, 5, 7]),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..=8).contains(&b));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 100);
            }
            prop_assert!(s == 3 || s == 5 || s == 7);
        }

        /// `prop_map` applies its transform.
        #[test]
        fn prop_map_applies((lo, hi) in (0u32..5, 10u32..15).prop_map(|(a, b)| (a, b))) {
            prop_assert!(lo < 5 && (10..15).contains(&hi));
            prop_assert_eq!(lo + hi, hi + lo);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let r1 = TestRunner::new(ProptestConfig::with_cases(8), "t");
        let r2 = TestRunner::new(ProptestConfig::with_cases(8), "t");
        for case in 0..8 {
            let a = (0u64..1_000_000).generate(&mut r1.rng_for(case));
            let b = (0u64..1_000_000).generate(&mut r2.rng_for(case));
            assert_eq!(a, b);
        }
    }
}
