//! Offline sequential stand-in for the `rayon` crate.
//!
//! This container has no network access and no crates.io mirror, so the
//! workspace vendors an API-compatible subset of rayon as a path
//! dependency. Every `par_*` entry point returns the corresponding
//! *sequential* `std` iterator, so downstream `.zip()`, `.enumerate()`,
//! `.map()`, `.for_each()` and `.collect()` chains compile unchanged and
//! run on one thread.
//!
//! This is semantically valid for this workspace because the codebase
//! pins a bitwise-determinism contract: results are identical at every
//! worker count (see `vpic_core::threads::worker_threads`, whose docs
//! already anticipate running "identically against the real crate and
//! the offline sequential stand-in"). A sequential schedule is just the
//! one-worker member of that equivalence class. Pipeline decomposition
//! (how work is *partitioned*) is controlled by the callers, not by
//! rayon, so per-pipeline accumulator semantics are unchanged.

/// Extension trait mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Extension trait mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Extension trait mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<T> {
    /// Sequential stand-in for `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    #[inline]
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// Extension trait mirroring `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<T> {
    /// Sequential stand-in for `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> IntoParallelRefMutIterator<T> for [T] {
    #[inline]
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

pub mod prelude {
    //! Mirrors `rayon::prelude`: glob-import to get the `par_*` methods.
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

pub mod slice {
    //! Mirrors `rayon::slice` re-exports.
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod iter {
    //! Mirrors `rayon::iter` re-exports.
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Number of worker threads (always 1 for the sequential stand-in).
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_zip_matches_sequential() {
        let a = [1u32, 2, 3, 4, 5, 6];
        let mut b = [0u32; 6];
        b.par_chunks_mut(2)
            .zip(a.par_chunks(2))
            .enumerate()
            .for_each(|(i, (dst, src))| {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = s + i as u32;
                }
            });
        assert_eq!(b, [1, 2, 4, 5, 7, 8]);
    }

    #[test]
    fn par_iter_collects() {
        let v = vec![3u64, 1, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, [6, 2, 8]);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, [4, 2, 5]);
    }
}
