//! Weak scaling on this machine plus the Roadrunner projection — a small
//! interactive version of the paper's Gordon Bell scaling argument.
//!
//! Runs the same per-rank plasma on 1, 2, 4, … in-process ranks, prints
//! the measured efficiency and communication share, then calibrates the
//! analytic Roadrunner model with the measured single-rank rate and
//! projects the full 17-CU machine.
//!
//! Run with: `cargo run --release --example weak_scaling`

use nanompi::CartTopology;
use vpic::core::{Momentum, ParticleBc, Species};
use vpic::parallel::{DistributedSim, DomainSpec};
use vpic::roadrunner::{flops, KernelRates, Machine, NodeLoad, PerfModel};

fn main() {
    let per_rank_cells = (16usize, 16usize, 16usize);
    let ppc = 32;
    let steps = 40u64;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_ranks = (2 * cores).max(4);

    println!(
        "weak scaling: {ppc} ppc on {per_rank_cells:?} cells per rank, {steps} steps, {cores} hardware core(s)"
    );
    println!("(on an oversubscribed host, perfect software scaling = flat aggregate rate)\n");
    println!(
        "{:>6} {:>12} {:>10} {:>14} {:>8} {:>12}",
        "ranks", "particles", "time(s)", "agg rate(p/s)", "eff", "comm share"
    );

    let mut base_rate = 0.0f64;
    let mut base_rate_pps = 0.0f64;
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let topo = CartTopology::balanced(ranks, [true, true, true]);
        let global = (
            per_rank_cells.0 * topo.dims[0],
            per_rank_cells.1 * topo.dims[1],
            per_rank_cells.2 * topo.dims[2],
        );
        let spec = DomainSpec {
            global_cells: global,
            cell: (0.25, 0.25, 0.25),
            dt: 0.1,
            topo,
            global_bc: [ParticleBc::Periodic; 6],
            origin: (0.0, 0.0, 0.0),
        };
        let (results, _) = nanompi::run_expect(ranks, |comm| {
            let mut sim = DistributedSim::new(spec.clone(), comm.rank(), 1);
            let si = sim.add_species(Species::new("e", -1.0, 1.0));
            sim.load_uniform(si, 99, 1.0, ppc, Momentum::thermal(0.05));
            comm.barrier().unwrap();
            let t0 = std::time::Instant::now();
            for _ in 0..steps {
                sim.step(comm).unwrap();
            }
            comm.barrier().unwrap();
            (
                t0.elapsed().as_secs_f64(),
                sim.timings.comm_fraction(),
                sim.n_particles(),
            )
        });
        let time = results.iter().map(|r| r.0).fold(0.0, f64::max);
        let comm_share = results.iter().map(|r| r.1).sum::<f64>() / ranks as f64;
        let particles: usize = results.iter().map(|r| r.2).sum();
        let rate = particles as f64 * steps as f64 / time;
        if ranks == 1 {
            base_rate = rate;
            base_rate_pps = rate;
        }
        // Aggregate-throughput efficiency, normalized by the hardware
        // speedup actually available (min(ranks, cores)).
        let ideal = base_rate * (ranks.min(cores)) as f64;
        let eff = rate / ideal;
        println!(
            "{:>6} {:>12} {:>10.3} {:>14.3e} {:>8.2} {:>11.1}%",
            ranks,
            particles,
            time,
            rate,
            eff,
            100.0 * comm_share
        );
        ranks *= 2;
    }

    // Project the full machine from the measured single-rank rate.
    let machine = Machine::roadrunner();
    let rates = KernelRates::from_measured_host_rate(
        &machine,
        base_rate_pps,
        base_rate_pps * flops::particle::TOTAL as f64 / flops::voxel::TOTAL as f64,
        25.6, // treat one host core as one SPE-equivalent for the demo
    );
    let model = PerfModel { machine, rates };
    let load = NodeLoad::paper_headline(&machine);
    println!("\nRoadrunner projection (calibrated from this machine's rate):");
    println!("  1.0e12 particles / 136e6 voxels on 17 CUs:");
    println!(
        "  step time       : {:.3} s",
        model.step_budget(&load).total()
    );
    println!(
        "  particles/s     : {:.3e}",
        model.particles_per_second(&load)
    );
    println!(
        "  inner loop      : {:.3} Pflop/s (paper: 0.488)",
        model.inner_loop_pflops(&load)
    );
    println!(
        "  sustained       : {:.3} Pflop/s (paper: 0.374)",
        model.sustained_pflops(&load)
    );
}
