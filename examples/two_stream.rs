//! Two-stream instability: counter-streaming electron beams drive an
//! exponentially growing electrostatic wave; the measured growth rate is
//! compared with the cold-beam theory maximum γ_max = ωpe/(2√2) ≈ 0.354
//! (symmetric beams of density n/2 each).
//!
//! This is the classic kinetic-fidelity benchmark: getting the linear
//! growth *and* the nonlinear trapping saturation right is exactly what
//! the paper means by "modeling particle trapping physics accurately".
//!
//! Run with: `cargo run --release --example two_stream`

use vpic::core::{load_two_stream, Grid, Rng, Simulation, Species};
use vpic::diag::{momentum_histogram, tail_fraction, TimeSeries};

fn main() {
    let nx = 64;
    let dx = 0.2f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let grid = Grid::periodic((nx, 2, 2), (dx, dx, dx), dt);
    let mut sim = Simulation::new(grid, 4);

    let ud = 0.1f32; // beam drift ±0.1c
    let vth = 0.005f32; // cold beams
    let mut electrons = Species::new("electron", -1.0, 1.0);
    let mut rng = Rng::seeded(77);
    load_two_stream(&mut electrons, &sim.grid, &mut rng, 1.0, 128, ud, vth);
    sim.add_species(electrons);
    println!(
        "two-stream: {} particles, beams at ±{ud}c",
        sim.n_particles()
    );

    let before = momentum_histogram(&sim.species[0], 0, -0.4, 0.4, 40);

    let g = sim.grid.clone();
    let steps = (60.0 / g.dt as f64) as usize; // 60/ωpe
    let mut ex_energy = TimeSeries::new("Ex energy", g.dt as f64);
    for _ in 0..steps {
        sim.step();
        ex_energy.push(sim.energies().field_e.max(1e-300));
    }

    // Fit the growth rate in the linear phase: between noise floor and
    // saturation. Field ENERGY grows at 2γ.
    let (_, peak) = ex_energy.min_max();
    let sat_idx = ex_energy
        .samples
        .iter()
        .position(|&v| v > 0.1 * peak)
        .unwrap_or(steps / 2);
    let start = sat_idx / 3;
    let gamma = 0.5 * ex_energy.growth_rate_in(start, sat_idx);
    println!("\nlinear growth rate:");
    println!("  measured γ = {gamma:.3} ωpe (fit window steps {start}..{sat_idx})");
    println!(
        "  cold-beam theory γ_max = ωpe/(2√2) ≈ 0.354 (k-quantization and\n  finite temperature reduce the realized rate)"
    );

    // Trapping signature: momentum distribution flattens between beams.
    let after = momentum_histogram(&sim.species[0], 0, -0.4, 0.4, 40);
    let gap_before = before.weight_in(-0.03, 0.03);
    let gap_after = after.weight_in(-0.03, 0.03);
    println!("\ntrapping / phase-space mixing:");
    println!("  weight between the beams (|ux| < 0.03): {gap_before:.3e} -> {gap_after:.3e}");
    println!(
        "  hot tail  (ux > 0.15): {:.4} -> {:.4}",
        0.0,
        tail_fraction(&sim.species[0], 0, 0.15)
    );
    println!(
        "\nfinal field energy fraction: {:.3e}",
        sim.energies().field_e / sim.energies().total()
    );
}
