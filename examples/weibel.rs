//! Weibel (temperature-anisotropy) instability: a plasma hotter across x
//! than along it spontaneously generates magnetic field — a fully
//! electromagnetic, fully kinetic effect only a relativistic EM PIC code
//! captures, and a good showcase of the 3D field solver + current
//! deposition working together (the field grows out of particle noise).
//!
//! Run with: `cargo run --release --example weibel`

use vpic::core::{load_uniform, Grid, Momentum, Rng, Simulation, Species};
use vpic::diag::TimeSeries;

fn main() {
    let dx = 0.2f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    // The unstable modes have k along the *cold* axis (x here? convention:
    // B grows with k along the cold direction, B transverse): make x long.
    let grid = Grid::periodic((48, 8, 8), (dx, dx, dx), dt);
    let mut sim = Simulation::new(grid, 4);

    // Strong anisotropy: hot in y/z, cold along x (A = T⊥/T∥ − 1 = 24).
    let (u_par, u_perp) = (0.02f32, 0.1f32);
    let mut e = Species::new("electron", -1.0, 1.0);
    let mut rng = Rng::seeded(1977);
    load_uniform(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        64,
        Momentum {
            uth: [u_par, u_perp, u_perp],
            drift: [0.0; 3],
        },
    );
    sim.add_species(e);
    let anisotropy = (u_perp / u_par).powi(2) - 1.0;
    println!(
        "Weibel setup: {} particles, T⊥/T∥ − 1 = {anisotropy:.0}, box {:.1} c/ωpe",
        sim.n_particles(),
        sim.grid.extent().0
    );

    let steps = (120.0 / sim.grid.dt as f64) as usize;
    let mut b_energy = TimeSeries::new("B energy", sim.grid.dt as f64);
    let mut e_hist = Vec::new();
    for s in 0..steps {
        sim.step();
        let en = sim.energies();
        b_energy.push(en.field_b.max(1e-300));
        if s % (steps / 10) == 0 {
            e_hist.push((s, en.field_b, en.kinetic[0]));
        }
    }

    println!("\n   step     B energy     kinetic");
    for (s, fb, ke) in &e_hist {
        println!("{s:>7}  {fb:>11.3e}  {ke:>10.5}");
    }

    let (b_min, b_max) = b_energy.min_max();
    println!(
        "\nB-field energy grew {:.1e}× out of particle noise",
        b_max / b_min.max(1e-300)
    );
    let peak_idx = b_energy
        .samples
        .iter()
        .position(|&v| v >= 0.99 * b_max)
        .unwrap();
    let gamma = 0.5 * b_energy.growth_rate_in(peak_idx / 4, 3 * peak_idx / 4);
    // Weibel γ_max ≈ u_perp·√A... order-of-magnitude comparison: the cold
    // bound is γ ≲ v⊥ k c at k ~ ωpe/c·√A-ish; we report the measured rate.
    println!("measured exponential growth rate γ ≈ {gamma:.3} ωpe");
    println!(
        "(theory: γ_max ~ β⊥·√(A/(A+1)) ≈ {:.3} ωpe for cold-limit Weibel)",
        u_perp as f64 * (anisotropy as f64 / (anisotropy as f64 + 1.0)).sqrt()
    );
    let final_ratio = b_energy.samples.last().unwrap() / b_max;
    println!(
        "saturation: final B energy is {:.2}× its peak (magnetic trapping halts growth)",
        final_ratio
    );
}
