//! Magnetic reconnection in a perturbed Harris sheet — VPIC's other
//! flagship application (the same engine the SC'08 paper scaled was used
//! for landmark kinetic reconnection studies). A GEM-style island
//! perturbation is seeded and the reconnected flux (Bz at the X-line
//! plane) grows as the sheet tears.
//!
//! Run with: `cargo run --release --example reconnection`

use vpic::core::harris::HarrisSheet;
use vpic::core::{Grid, ParticleBc, Rng, Simulation, Species};

fn main() {
    let (nx, ny, nz) = (32usize, 2usize, 32usize);
    let dx = 0.4f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let mut g = Grid::new(
        (nx, ny, nz),
        (dx, dx, dx),
        dt,
        [
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Reflect,
        ],
    );
    g.z0 = -(nz as f32) * dx / 2.0;
    g.rebuild_neighbors();
    let mut sim = Simulation::new(g, 4);

    let sheet = HarrisSheet::gem_like(0.4, 0.0);
    let mut e = Species::new("electron", -1.0, 1.0);
    let mut ions = Species::new("ion", 1.0, sheet.mi);
    let mut rng = Rng::seeded(2008);
    sheet.load(&mut e, &mut ions, &sim.grid, &mut rng, 48);
    sim.add_species(e);
    sim.add_species(ions);
    let grid = sim.grid.clone();
    sheet.init_field(&mut sim.fields, &grid);
    sheet.perturb(&mut sim.fields, &grid, 0.05);

    let (ude, udi) = sheet.drifts();
    println!(
        "Harris sheet: B0 = {}, L = {}, mi/me = {}, Ti/Te = {}",
        sheet.b0, sheet.l, sheet.mi, sheet.ti_over_te
    );
    println!(
        "drifts: u_de = {ude:.4}, u_di = {udi:.4}; {} particles\n",
        sim.n_particles()
    );

    // Reconnected-flux proxy: |Bz| integrated along the sheet center line.
    let flux = |sim: &Simulation| -> f64 {
        let kc = nz / 2;
        (1..=nx)
            .map(|i| sim.fields.cbz[grid.voxel(i, 1, kc)].abs() as f64)
            .sum::<f64>()
            * grid.dx as f64
    };

    let steps = (80.0 / grid.dt as f64) as usize;
    println!("   step   t·ωpe   reconnected flux   B energy");
    let mut history = Vec::new();
    for s in 0..=steps {
        if s % (steps / 8).max(1) == 0 {
            let fl = flux(&sim);
            let eb = sim.energies().field_b;
            println!(
                "{s:>7}  {:>6.1}  {fl:>16.4e}  {eb:>9.4}",
                s as f64 * grid.dt as f64
            );
            history.push(fl);
        }
        if s < steps {
            sim.step();
        }
    }
    let growth = history.last().unwrap() / history.first().unwrap().max(1e-12);
    println!("\nreconnected flux grew {growth:.1}× from the seed perturbation");
    println!("(the island at the X-line grows as the sheet tears — collisionless");
    println!(" reconnection mediated entirely by kinetic physics, no resistivity)");
}
