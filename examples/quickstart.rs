//! Quickstart: a warm periodic plasma ringing at the plasma frequency.
//!
//! Loads electrons on an implicit neutralizing ion background, seeds a
//! longitudinal standing wave, runs a few plasma periods and prints the
//! energy ledger plus the measured Langmuir frequency against theory
//! (ω² = ωpe² + 3k²vth²).
//!
//! Run with: `cargo run --release --example quickstart`

use vpic::core::field_solver::{bcs_of, sync_e};
use vpic::core::{load_uniform, Grid, Momentum, Rng, Simulation, Species};
use vpic::diag::TimeSeries;

fn main() {
    // Normalized units: c = 1, density 1 → ωpe = 1.
    let (nx, ny, nz) = (32, 4, 4);
    let dx = 0.125f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let grid = Grid::periodic((nx, ny, nz), (dx, dx, dx), dt);
    let mut sim = Simulation::new(grid, 4);

    let vth = 0.02f32;
    let ppc = 64;
    let mut electrons = Species::new("electron", -1.0, 1.0);
    let mut rng = Rng::seeded(2008);
    load_uniform(
        &mut electrons,
        &sim.grid,
        &mut rng,
        1.0,
        ppc,
        Momentum::thermal(vth),
    );
    sim.add_species(electrons);
    println!(
        "loaded {} macroparticles on {} cells (dt = {:.4}/ωpe)",
        sim.n_particles(),
        sim.grid.n_live(),
        sim.grid.dt
    );

    // Seed a k = 2π/L longitudinal wave.
    let g = sim.grid.clone();
    let l = g.extent().0;
    let kx = 2.0 * std::f32::consts::PI / l;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let x = (i as f32 - 0.5) * g.dx;
                sim.fields.ex[g.voxel(i, j, k)] = 0.005 * (kx * x).sin();
            }
        }
    }
    sync_e(&mut sim.fields, &g, bcs_of(&g));

    // Run ~6 plasma periods, recording the field energy.
    let t_end = 6.0 * 2.0 * std::f64::consts::PI;
    let steps = (t_end / g.dt as f64) as usize;
    let mut field_energy = TimeSeries::new("E-field energy", g.dt as f64);
    let e0 = sim.energies();
    for _ in 0..steps {
        sim.step();
        field_energy.push(sim.energies().field_e);
    }
    let e1 = sim.energies();

    println!("\nenergy ledger (normalized units):");
    println!("  field E : {:.6e} -> {:.6e}", e0.field_e, e1.field_e);
    println!("  field B : {:.6e} -> {:.6e}", e0.field_b, e1.field_b);
    println!("  kinetic : {:.6e} -> {:.6e}", e0.kinetic[0], e1.kinetic[0]);
    let drift = (e1.total() - e0.total()) / e0.total();
    println!("  total drift over {steps} steps: {:.3e} (relative)", drift);

    // Field energy oscillates at 2ω; Bohm-Gross gives ω.
    let omega_meas = field_energy.dominant_omega() / 2.0;
    let omega_theory = (1.0 + 3.0 * (kx * vth) as f64 * (kx * vth) as f64).sqrt();
    println!("\nLangmuir oscillation:");
    println!("  measured  ω = {omega_meas:.4} ωpe");
    println!("  Bohm-Gross ω = {omega_theory:.4} ωpe");
    println!(
        "  error: {:.2}%",
        100.0 * (omega_meas - omega_theory).abs() / omega_theory
    );
}
