//! Collisional relaxation: a temperature-anisotropic plasma isotropizes
//! under the Takizuka–Abe binary-collision operator while conserving
//! momentum and energy to roundoff — the standard acceptance test for a
//! PIC collision package (VPIC ships the same operator for collisional
//! hohlraum plasmas).
//!
//! Run with: `cargo run --release --example collisional_relaxation`

use vpic::core::collision::CollisionOperator;
use vpic::core::{load_uniform, Grid, Momentum, Rng, Simulation, Species};

fn temperature(sp: &Species, axis: usize) -> f64 {
    let n = sp.len() as f64;
    sp.iter()
        .map(|p| (p.momentum(axis) as f64).powi(2))
        .sum::<f64>()
        / n
}

fn main() {
    let dx = 0.5f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let grid = Grid::periodic((8, 8, 8), (dx, dx, dx), dt);
    let mut sim = Simulation::new(grid, 1);

    let mut e = Species::new("electron", -1.0, 1.0);
    let mut rng = Rng::seeded(77);
    load_uniform(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        64,
        Momentum {
            uth: [0.1, 0.03, 0.03],
            drift: [0.0; 3],
        },
    );
    let si = sim.add_species(e);
    sim.add_collisions(si, CollisionOperator::new(2e-4, 1));

    let p0 = sim.species[si].momentum(&sim.grid);
    let e0 = sim.energies().total();
    println!(
        "TA77 relaxation: ν0 = 2e-4, {} particles",
        sim.n_particles()
    );
    println!("\n   step     Tx        Ty        Tz      Tx/Ty");
    let steps = 600usize;
    for s in 0..=steps {
        if s % 100 == 0 {
            let sp = &sim.species[si];
            let (tx, ty, tz) = (temperature(sp, 0), temperature(sp, 1), temperature(sp, 2));
            println!("{s:>7}  {tx:.2e}  {ty:.2e}  {tz:.2e}  {:>6.2}", tx / ty);
        }
        if s < steps {
            sim.step();
        }
    }
    let p1 = sim.species[si].momentum(&sim.grid);
    let e1 = sim.energies().total();
    println!("\nconservation over {steps} collisional steps:");
    println!(
        "  energy   : {:.4e} -> {:.4e} ({:+.2e} relative)",
        e0,
        e1,
        (e1 - e0) / e0
    );
    println!(
        "  momentum : [{:+.2e} {:+.2e} {:+.2e}] -> [{:+.2e} {:+.2e} {:+.2e}]",
        p0[0], p0[1], p0[2], p1[0], p1[1], p1[2]
    );
    println!("\n(Tx/Ty relaxes toward 1 while the totals hold — collisions exchange");
    println!(" energy between degrees of freedom, never create or destroy it.)");
}
