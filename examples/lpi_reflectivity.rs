//! Laser–plasma interaction demo: one point of the paper's headline
//! parameter study. A laser enters an underdense plasma slab
//! (n/ncr = 0.1) and the stimulated-Raman backscatter reflectivity is
//! measured between the antenna and the plasma, alongside the linear-gain
//! and Tang (fluid) predictions and the trapping diagnostics.
//!
//! Run with: `cargo run --release --example lpi_reflectivity`
//! (add `-- --a0 0.04` to change the laser strength)

use vpic::diag::{momentum_spread, tail_fraction};
use vpic::lpi::{tang_reflectivity, LpiParams, LpiRun};

fn main() {
    let mut a0 = 0.03f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--a0" {
            a0 = args
                .next()
                .expect("--a0 needs a value")
                .parse()
                .expect("bad a0");
        }
    }

    let params = LpiParams {
        n_over_ncr: 0.1,
        vth: 0.06,
        a0,
        flat: 24.0,
        ppc: 128,
        pipelines: 4,
        ..Default::default()
    };
    let mut run = LpiRun::new(params);
    let m = run.srs;
    println!("SRS backscatter point at a0 = {a0}:");
    println!("  ω0 = {:.3} ωpe, k0 = {:.3}", m.omega0, m.k0);
    println!(
        "  plasma wave: ω = {:.3}, k = {:.3}, kλD = {:.3}, vφ = {:.3}c",
        m.omega_ek, m.k_ek, m.k_lambda_d, m.v_phase
    );
    println!(
        "  γ0 = {:.4} ωpe, Landau ν = {:.4}, γ0/ν = {:.2}",
        m.growth_rate(a0),
        m.landau_damping(),
        m.growth_to_damping(a0)
    );
    let gain = m.linear_gain(a0, params.flat as f64);
    println!("  linear slab gain G = {gain:.2}");

    let vphi = m.v_phase;
    let u_trap = vphi; // crude: tail beyond the phase velocity
    let tail_before = tail_fraction(run.electron_species(), 0, u_trap);
    let spread_before = momentum_spread(run.electron_species(), 0);

    let steps = run.suggested_steps(3.0);
    println!(
        "\nrunning {} steps on {} cells / {} particles ...",
        steps,
        run.sim.grid.n_live(),
        run.sim.n_particles()
    );
    run.run(steps);

    let r_pic = run.reflectivity();
    let r_tang = tang_reflectivity(gain, 1e-5);
    println!("\nreflectivity (time-averaged over the measurement window):");
    println!("  PIC measured      R = {r_pic:.3e}");
    println!("  Tang fluid model  R = {r_tang:.3e} (seed 1e-5)");

    let tail_after = tail_fraction(run.electron_species(), 0, u_trap);
    let spread_after = momentum_spread(run.electron_species(), 0);
    println!("\ntrapping diagnostics (electrons, x-momentum):");
    println!("  tail fraction beyond vφ: {tail_before:.2e} -> {tail_after:.2e}");
    println!("  momentum spread: {spread_before:.4} -> {spread_after:.4} (bulk heating)");
    println!(
        "\n(particles lost to the absorbing ends: {})",
        run.sim.lost_particles
    );
}
