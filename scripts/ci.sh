#!/usr/bin/env bash
# Tier-1 gate for the workspace: build, tests, formatting, lints.
# Run from the repository root:  bash scripts/ci.sh
#
# Pass "soak" (or set CI_SOAK=1) to additionally run the seeded fault-soak
# lane — the #[ignore]d release-mode campaign soak in tests/campaign_soak.rs.
# It takes minutes of wall time, so it stays out of the default tier-1 path.
#
# Pass "bench-smoke" (or set CI_BENCH_SMOKE=1) to run the step-throughput
# bench on a small grid, write target/BENCH_smoke.json, and re-validate it
# (schema check; NaN or zero rates fail the lane).
#
# Pass "sentinel" (or set CI_SENTINEL=1) to run the numerical-integrity
# lane: the sentinel unit/property tests and the seeded heal/rollback/
# degrade scenarios, built with debug assertions enabled so integer
# overflow and debug invariants are checked too.
#
# Pass "layout" (or set CI_LAYOUT=1) to run the particle-storage lane:
# AoS/AoSoA bit-identity across worker counts, cross-layout checkpoint
# restore, exile migration, the `layout = aosoa` deck knob, and the
# sentinel rollback campaign pinned to AoSoA storage.
#
# Pass "kernel" (or set CI_KERNEL=1) to run the lane-kernel lane: the
# differential-oracle harness (lane-wide push/gather vs the scalar AoS
# oracle, including the deferred-scatter batch cases), the lane-math unit
# suite, the determinism matrix, the adaptive-sort-cadence determinism and
# checkpoint round-trip suites, and the fault-injected SRS rollback matrix
# at 1/2/4/8 pipelines — all with debug assertions on — then a bench
# smoke that asserts the lane kernel is at least as fast as the scalar
# body it replaced and that the auto cadence is at least on par with the
# historical fixed-25 default.
#
# Pass "sweep" (or set CI_SWEEP=1) to run the reflectivity-sweep-service
# lane: the WAL corruption matrix, the job-queue state machine, the
# scheduler/grid/curve suites, the distributed sweep-job adapter, the
# shrunk kill/resume and quarantine tests, and a [sweep] deck end to end
# through vpic-run with e5 consuming the curve artifact.
#
# Pass "transport" (or set CI_TRANSPORT=1) to run the socket-transport
# lane: the nanompi wire/socket/bootstrap suites, the local-vs-socket
# determinism matrix on the shipped SRS deck, the multi-process
# kill -9/rejoin recovery test, and the 16-plan socket fault soak.
#
# Pass "diag" (or set CI_DIAG=1) to run the diagnostics-pipeline lane:
# the bounded-queue/engine unit and property suites, the [diag] deck
# knobs, the sync-vs-async artifact bit-identity matrix (layout x kernel
# x 1/2/4/8 pipelines) with the kill-mid-measurement campaign replay,
# and a default-size e2 bench pair asserting async diagnostics cost
# ≤ 3% of diagnostics-off step throughput.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "soak" || "${CI_SOAK:-0}" == "1" ]]; then
    echo "==> fault-soak lane (release, ignored tests)"
    cargo test --release --test campaign_soak -- --ignored --nocapture
    cargo test --release --test srs_soak -- --ignored --nocapture
    cargo test --release --test sweep_soak -- --ignored --nocapture
fi

if [[ "${1:-}" == "sweep" || "${CI_SWEEP:-0}" == "1" ]]; then
    echo "==> sweep lane (crash-proof reflectivity-sweep service)"
    # WAL hardening: truncation/bit-flip/torn-tail matrix plus the
    # journal and job-queue unit suites.
    cargo test --release -p vpic-core --test journal_corruption
    cargo test --release -p vpic-core --lib journal
    cargo test --release -p vpic-core --lib queue
    # Orchestrator: grid/scheduler/curve suites, the distributed
    # sweep-job adapter, and the shrunk kill/resume + quarantine tests.
    cargo test --release -p vpic-lpi sweep
    cargo test --release -p vpic-parallel --lib sweepjob
    cargo test --release --test sweep_soak
    # End to end: a shrunk [sweep] deck through vpic-run (kill-safe
    # service path), then the e5 harness consuming the curve artifact.
    cargo build --release -p vpic -p vpic-bench
    deck=target/ci_sweep.deck
    cat > "$deck" <<'EOF'
kind = lpi
steps = 40
seed = 7
[laser]
a0 = 0.01
flat = 4
ppc = 4
[sweep]
a0 = 0.01, 0.02
checkpoint_interval = 10
[sentinel]
health_interval = 10
max_energy_growth = 100
EOF
    rm -rf target/ci_sweep_out
    ./target/release/vpic-run "$deck" target/ci_sweep_out
    ./target/release/e5_reflectivity \
        --from-curve target/ci_sweep_out/sweep/reflectivity_curve.json
fi

if [[ "${1:-}" == "transport" || "${CI_TRANSPORT:-0}" == "1" ]]; then
    echo "==> transport lane (socket worlds, kill -9 recovery)"
    # The wire-format and socket substrate suites: framing, CRC breakage,
    # bootstrap mismatches (version / world size / fingerprint / silent
    # peer), heartbeat failure detection, respawn adoption.
    cargo test --release -p nanompi --lib wire
    cargo test --release -p nanompi --lib socket
    # Transport plumbing above nanompi: Migrant wire round-trip, the
    # socket-mode sweep-job launcher, the transport/laser/sponge deck
    # globals.
    cargo test --release -p vpic-parallel --lib migrate
    cargo test --release -p vpic-parallel --lib sweepjob
    cargo test --release -p vpic --lib transport_global
    cargo test --release -p vpic --lib campaign_laser_and_sponge
    # Determinism matrix: the shipped SRS campaign deck must land on the
    # same state fingerprint over both transports.
    cargo build --release -p vpic
    rm -rf target/ci_transport_local target/ci_transport_sock
    ./target/release/vpic-run decks/srs_campaign.deck target/ci_transport_local \
        --transport local
    ./target/release/vpic-run decks/srs_campaign.deck target/ci_transport_sock \
        --transport socket
    diff target/ci_transport_local/state_fingerprint.txt \
        target/ci_transport_sock/state_fingerprint.txt
    # Multi-process acceptance: 4 OS processes, rank 2 kill -9'd mid-run,
    # respawned with --rejoin, bit-identical to the local baseline — then
    # the 16-plan socket fault soak.
    cargo test --release --test socket_transport
    cargo test --release --test socket_transport -- --ignored --nocapture
fi

if [[ "${1:-}" == "diag" || "${CI_DIAG:-0}" == "1" ]]; then
    echo "==> diag lane (async in-situ diagnostics pipeline)"
    # Engine + bounded-queue suites: flush/drain ordering (proptest),
    # reset re-seeding, drop-mode accounting, windowed series retention.
    cargo test --release -p vpic-diag --lib pipeline
    cargo test --release -p vpic-diag --lib recorder
    # The `diag = off|sync|async` global and the [diag] section knobs.
    cargo test --release -p vpic --lib diag
    # The contract tests: sync-vs-async artifact bit-identity across
    # layout x kernel x pipeline count, and a seeded kill mid-measurement
    # whose rollback replay must not double-count a single sample.
    cargo test --release --test diag_pipeline
    # Bench smoke at the default e2 size (tiny grids are noise-bound and
    # would fail the gate spuriously): async diagnostics must keep step
    # throughput within 3% of the diagnostics-off baseline.
    cargo build --release -p vpic-bench
    rm -f target/BENCH_diag_smoke.json
    ./target/release/e2_step_breakdown --layout aosoa --kernel lane \
        --diag off --json target/BENCH_diag_smoke.json
    ./target/release/e2_step_breakdown --layout aosoa --kernel lane \
        --diag async --json target/BENCH_diag_smoke.json
    ./target/release/e2_step_breakdown --validate target/BENCH_diag_smoke.json
    ./target/release/e2_step_breakdown --assert-diag target/BENCH_diag_smoke.json
fi

if [[ "${1:-}" == "sentinel" || "${CI_SENTINEL:-0}" == "1" ]]; then
    echo "==> sentinel lane (debug assertions on)"
    # Release speed with debug_assert!/overflow checks live, so the
    # monitors' own arithmetic is vetted while the seeded blow-up,
    # in-place heal, rollback and degrade scenarios run.
    export RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on"
    cargo test --release -p vpic-core sentinel
    cargo test --release --test sentinel_heal
    cargo test --release --test srs_soak shrunk
fi

if [[ "${1:-}" == "layout" || "${CI_LAYOUT:-0}" == "1" ]]; then
    echo "==> layout lane (AoSoA storage through the production path)"
    # Bit-identity of the two layouts at every worker count, plus the
    # store/AoSoA unit suites (counting sort, exile emission, round-trip).
    cargo test --release -p vpic-core --test determinism
    cargo test --release -p vpic-core --lib store
    cargo test --release -p vpic-core --lib aosoa
    # Cross-layout exile migration at a rank boundary, checkpoint restore
    # into the other layout, and the `layout = aosoa` deck knob end to end.
    cargo test --release -p vpic-parallel --lib migration_is_bitwise_identical_across_layouts
    cargo test --release -p vpic --lib layout
    # Sentinel heal/rollback on a `layout = aosoa` campaign must land on
    # the same bits as the AoS run — checkpoints are canonical AoS bytes.
    cargo test --release --test srs_soak aosoa_campaign_recovers
    # The v2 step bench records which layout produced each rate.
    cargo build --release -p vpic-bench
    ./target/release/e2_step_breakdown --nx 16 --ppc 8 --steps 5 --pipelines 2 \
        --layout aosoa --json target/BENCH_layout_smoke.json
    ./target/release/e2_step_breakdown --validate target/BENCH_layout_smoke.json
fi

if [[ "${1:-}" == "kernel" || "${CI_KERNEL:-0}" == "1" ]]; then
    echo "==> kernel lane (lane-wide push + gather vs the scalar oracle)"
    # Debug assertions live while the differential oracle runs. Setting
    # RUSTFLAGS replaces .cargo/config.toml's flags wholesale, so restate
    # target-cpu=native — without it the lane kernel would be rebuilt for
    # the baseline ISA and the bench smoke below would measure the wrong
    # code.
    export RUSTFLAGS="${RUSTFLAGS:-} -C target-cpu=native -C debug-assertions=on"
    # The tentpole harness: proptest-generated states (thermal, all-cross,
    # all-absorbed, denormal, one-live-tail) round-trip bit-identically
    # through the lane kernel against the pinned scalar AoS oracle.
    cargo test --release -p vpic-core --test kernel_oracle
    # Lane-math unit suite and the layout x kernel x pipeline-count
    # determinism matrix.
    cargo test --release -p vpic-core --lib lanes
    cargo test --release -p vpic-core --test determinism lane_kernel
    # Adaptive sort cadence: the controller's unit suite, then the
    # integration contract — identical decisions across pipelines /
    # layouts / kernels, checkpoint round-trip, convergence, and the
    # zero-crosser sort skip.
    cargo test --release -p vpic-core --lib cadence
    cargo test --release -p vpic-core --test cadence
    # The `kernel = scalar|lane` deck knob, and the fault-injected SRS
    # rollback matrix: a NaN upset mid-campaign must recover onto the
    # same bits under every kernel/pipeline combination.
    cargo test --release -p vpic --lib kernel_knob
    cargo test --release --test srs_soak lane_kernel
    # Bench smoke: both kernels and both cadences on the same grid,
    # schema + oracle cross-check, then the speedup gate (lane >= scalar)
    # and the cadence gate (auto >= 0.97x fixed-25, same-file records).
    cargo build --release -p vpic-bench
    rm -f target/BENCH_kernel_smoke.json
    ./target/release/e2_step_breakdown --nx 16 --ppc 8 --steps 10 --pipelines 2 \
        --layout aosoa --kernel scalar --json target/BENCH_kernel_smoke.json
    ./target/release/e2_step_breakdown --nx 16 --ppc 8 --steps 10 --pipelines 2 \
        --layout aosoa --kernel lane --json target/BENCH_kernel_smoke.json
    ./target/release/e2_step_breakdown --nx 16 --ppc 8 --steps 10 --pipelines 2 \
        --layout aosoa --kernel lane --sort auto --json target/BENCH_kernel_smoke.json
    ./target/release/e2_step_breakdown --validate target/BENCH_kernel_smoke.json
    ./target/release/e2_step_breakdown --assert-speedup target/BENCH_kernel_smoke.json
    ./target/release/e2_step_breakdown --assert-auto target/BENCH_kernel_smoke.json
fi

if [[ "${1:-}" == "bench-smoke" || "${CI_BENCH_SMOKE:-0}" == "1" ]]; then
    echo "==> bench-smoke lane (step throughput + BENCH_step.json schema)"
    cargo build --release -p vpic-bench
    ./target/release/e2_step_breakdown \
        --nx 16 --ppc 8 --steps 5 --pipelines 2 --json target/BENCH_smoke.json
    ./target/release/e2_step_breakdown --validate target/BENCH_smoke.json
fi

echo "CI OK"
