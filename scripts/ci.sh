#!/usr/bin/env bash
# Tier-1 gate for the workspace: build, tests, formatting, lints.
# Run from the repository root:  bash scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
