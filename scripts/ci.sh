#!/usr/bin/env bash
# Tier-1 gate for the workspace: build, tests, formatting, lints.
# Run from the repository root:  bash scripts/ci.sh
#
# Pass "soak" (or set CI_SOAK=1) to additionally run the seeded fault-soak
# lane — the #[ignore]d release-mode campaign soak in tests/campaign_soak.rs.
# It takes minutes of wall time, so it stays out of the default tier-1 path.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "soak" || "${CI_SOAK:-0}" == "1" ]]; then
    echo "==> fault-soak lane (release, ignored tests)"
    cargo test --release --test campaign_soak -- --ignored --nocapture
fi

echo "CI OK"
