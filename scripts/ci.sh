#!/usr/bin/env bash
# Tier-1 gate for the workspace: build, tests, formatting, lints.
# Run from the repository root:  bash scripts/ci.sh
#
# Pass "soak" (or set CI_SOAK=1) to additionally run the seeded fault-soak
# lane — the #[ignore]d release-mode campaign soak in tests/campaign_soak.rs.
# It takes minutes of wall time, so it stays out of the default tier-1 path.
#
# Pass "bench-smoke" (or set CI_BENCH_SMOKE=1) to run the step-throughput
# bench on a small grid, write target/BENCH_smoke.json, and re-validate it
# (schema check; NaN or zero rates fail the lane).
#
# Pass "sentinel" (or set CI_SENTINEL=1) to run the numerical-integrity
# lane: the sentinel unit/property tests and the seeded heal/rollback/
# degrade scenarios, built with debug assertions enabled so integer
# overflow and debug invariants are checked too.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "soak" || "${CI_SOAK:-0}" == "1" ]]; then
    echo "==> fault-soak lane (release, ignored tests)"
    cargo test --release --test campaign_soak -- --ignored --nocapture
    cargo test --release --test srs_soak -- --ignored --nocapture
fi

if [[ "${1:-}" == "sentinel" || "${CI_SENTINEL:-0}" == "1" ]]; then
    echo "==> sentinel lane (debug assertions on)"
    # Release speed with debug_assert!/overflow checks live, so the
    # monitors' own arithmetic is vetted while the seeded blow-up,
    # in-place heal, rollback and degrade scenarios run.
    export RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on"
    cargo test --release -p vpic-core sentinel
    cargo test --release --test sentinel_heal
    cargo test --release --test srs_soak shrunk
fi

if [[ "${1:-}" == "bench-smoke" || "${CI_BENCH_SMOKE:-0}" == "1" ]]; then
    echo "==> bench-smoke lane (step throughput + BENCH_step.json schema)"
    cargo build --release -p vpic-bench
    ./target/release/e2_step_breakdown \
        --nx 16 --ppc 8 --steps 5 --pipelines 2 --json target/BENCH_smoke.json
    ./target/release/e2_step_breakdown --validate target/BENCH_smoke.json
fi

echo "CI OK"
