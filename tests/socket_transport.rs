//! Multi-process socket-transport acceptance.
//!
//! The headline test (NOT ignored — it runs in the default suite) drives
//! the shipped SRS campaign deck as four separate `vpic-run` OS processes
//! over Unix-domain sockets, `kill -9`s rank 2 mid-run, respawns it with
//! `--rejoin`, and requires the recovered world's `state_fingerprint.txt`
//! to be bit-identical to an unfaulted `--transport local` run of the
//! same deck. Checkpoint writes are throttled so the kill window spans
//! seconds regardless of build profile.
//!
//! The `#[ignore]`d soak throws 16 seeded fault plans — kills, drops,
//! delays, duplicates, corruptions — at a 4-rank campaign running over
//! real sockets (`run_socket_world`), alternating rollback and hot-spare
//! recovery: every plan must complete bit-identically to the fault-free
//! reference or degrade gracefully.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};
use vpic::core::crc32::fingerprint32;
use vpic::core::{Momentum, Species};
use vpic::parallel::campaign::{run_campaign, CampaignConfig, CampaignEnd, RecoveryMode};
use vpic::parallel::{dump_rank_bytes, DistributedSim, DomainSpec};

const WORLD: usize = 4;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_vpic-run")
}

fn repo_deck() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("decks/srs_campaign.deck")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_sockt_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Launch one `vpic-run` seat of a socket world, logging to `log`.
fn spawn_rank(deck: &Path, out: &Path, rank: usize, rejoin: bool, log: &Path) -> Child {
    let logf = std::fs::File::create(log).unwrap();
    let mut cmd = Command::new(bin());
    cmd.arg(deck)
        .arg(out)
        .args(["--rank", &rank.to_string(), "--world", &WORLD.to_string()])
        .stdout(Stdio::from(logf.try_clone().unwrap()))
        .stderr(Stdio::from(logf));
    if rejoin {
        cmd.arg("--rejoin");
    }
    cmd.spawn().unwrap()
}

fn wait_deadline(child: &mut Child, deadline: Duration, what: &str) -> ExitStatus {
    let t0 = Instant::now();
    loop {
        if let Some(st) = child.try_wait().unwrap() {
            return st;
        }
        if t0.elapsed() > deadline {
            let _ = child.kill();
            panic!("{what} still running after {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fingerprint_of(out: &Path) -> String {
    std::fs::read_to_string(out.join("state_fingerprint.txt"))
        .unwrap_or_else(|e| panic!("no state fingerprint in {}: {e}", out.display()))
        .trim()
        .to_string()
}

/// The acceptance scenario from the issue: a 4-rank SRS campaign over
/// SocketTransport with one rank `kill -9`'d mid-run recovers to the
/// exact bits of an unfaulted LocalTransport run.
#[test]
fn kill9_rank_recovers_bit_identical_to_local_transport() {
    let dir = temp_dir("kill9");
    // The shipped deck, stretched to 40 steps with throttled checkpoint
    // writes: each ~6 KB dump takes ~0.3 s, so >2 s of run remain after
    // the step-8 checkpoint lands — a kill window that doesn't depend on
    // how fast the build steps the physics.
    let deck_text = std::fs::read_to_string(repo_deck())
        .unwrap()
        .replace("steps = 12", "steps = 40")
        .replace(
            "checkpoint_interval = 4",
            "checkpoint_interval = 4\ncheckpoint_write_mbps = 0.02",
        );
    let deck = dir.join("srs40.deck");
    std::fs::write(&deck, deck_text).unwrap();

    // Unfaulted baseline over the in-process transport.
    let local_out = dir.join("local");
    let status = Command::new(bin())
        .arg(&deck)
        .arg(&local_out)
        .args(["--transport", "local"])
        .status()
        .unwrap();
    assert!(status.success(), "local baseline run failed");
    let local_fp = fingerprint_of(&local_out);

    // The same deck as four OS processes over Unix-domain sockets.
    let sock_out = dir.join("sock");
    let mut children: Vec<Child> = (0..WORLD)
        .map(|r| {
            spawn_rank(
                &deck,
                &sock_out,
                r,
                false,
                &dir.join(format!("rank{r}.log")),
            )
        })
        .collect();

    // Kill rank 2 the moment its step-8 checkpoint is on disk: the world
    // is mid-flight (32 steps to go) and a common rollback generation
    // exists.
    let ckpt = sock_out
        .join("checkpoints")
        .join("ckpt_00000008_r0002.vpic");
    let t0 = Instant::now();
    while !ckpt.exists() {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "rank 2 never wrote its step-8 checkpoint"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    children[2].kill().unwrap(); // SIGKILL: no cleanup, no goodbye
    let st = children[2].wait().unwrap();
    assert!(!st.success(), "rank 2 was supposed to die by signal");

    // Respawn the seat. The new process bootstraps into the running
    // world, adopts rank 2, and joins the survivors' rollback.
    let mut rejoined = spawn_rank(&deck, &sock_out, 2, true, &dir.join("rank2_rejoin.log"));

    let deadline = Duration::from_secs(120);
    for (r, mut c) in children.into_iter().enumerate() {
        if r == 2 {
            continue; // already reaped
        }
        let st = wait_deadline(&mut c, deadline, &format!("survivor rank {r}"));
        assert!(st.success(), "survivor rank {r} failed");
    }
    let st = wait_deadline(&mut rejoined, deadline, "rejoined rank 2");
    assert!(st.success(), "rejoined rank 2 failed");

    // Every seat recovered once and ran to completion...
    let survivor_log = std::fs::read_to_string(dir.join("rank0.log")).unwrap();
    assert!(
        survivor_log.contains("recovery #1") && survivor_log.contains("completed after 40 steps"),
        "rank 0 did not recover + complete:\n{survivor_log}"
    );
    let rejoin_log = std::fs::read_to_string(dir.join("rank2_rejoin.log")).unwrap();
    assert!(
        rejoin_log.contains("process respawn rejoin") && rejoin_log.contains("completed after"),
        "rank 2 did not rejoin + complete:\n{rejoin_log}"
    );

    // ...and the recovered world's state is the unfaulted world's state,
    // bit for bit.
    assert_eq!(
        fingerprint_of(&sock_out),
        local_fp,
        "socket kill/rejoin run diverged from the local baseline"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------- soak --

const STEPS: u64 = 10;
const SOAK_PLANS: u64 = 16;

fn spec() -> DomainSpec {
    DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, WORLD)
}

fn build_sim(rank: usize) -> DistributedSim {
    let mut sim = DistributedSim::new(spec(), rank, 1);
    let si = sim.add_species(Species::new("e", -1.0, 1.0));
    sim.load_uniform(si, 7, 1.0, 8, Momentum::thermal(0.08));
    sim
}

fn soak_config(dir: &Path, mode: RecoveryMode) -> CampaignConfig {
    CampaignConfig::new(STEPS, 3, dir)
        .with_op_timeout(Duration::from_millis(500))
        .with_health_interval(2)
        .with_max_recoveries(5)
        .with_recovery(mode)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible mix of every fault kind, identical in spirit to the
/// local transport's soak — the whole point is that a [`FaultPlan`] needs
/// no changes to torment a socket world.
fn random_plan(seed: u64) -> nanompi::FaultPlan {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
    let mut plan = nanompi::FaultPlan::new(seed);
    for _ in 0..=(splitmix64(&mut s) % 2) {
        let rank = (splitmix64(&mut s) % WORLD as u64) as usize;
        let step = 1 + splitmix64(&mut s) % (STEPS - 1);
        plan = plan.kill(rank, step);
    }
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % WORLD as u64) as usize;
        let p = (splitmix64(&mut s) % 50) as f64 / 1000.0;
        plan = plan.drop_messages(rank, p);
    }
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % WORLD as u64) as usize;
        let p = (splitmix64(&mut s) % 100) as f64 / 1000.0;
        let by = Duration::from_millis(1 + splitmix64(&mut s) % 15);
        plan = plan.delay_messages(rank, p, by);
    }
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % WORLD as u64) as usize;
        plan = plan.duplicate_message(rank, 1 + splitmix64(&mut s) % 300);
    }
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % WORLD as u64) as usize;
        plan = plan.corrupt_message(rank, 1 + splitmix64(&mut s) % 300);
    }
    plan
}

#[test]
#[ignore = "socket fault soak: minutes of wall time; run with cargo test --release -- --ignored"]
fn socket_fault_soak_sixteen_plans() {
    // Fault-free reference fingerprints, computed over sockets too so the
    // comparison isolates the faults, not the transport.
    let ref_dir = temp_dir("soak_ref");
    let (results, _) = nanompi::run_socket_world(
        WORLD,
        nanompi::SocketAddrSpec::unix(ref_dir.join("sock")),
        None,
        |comm| {
            let cfg = soak_config(&ref_dir.join("ckpt"), RecoveryMode::Rollback);
            let (sim, outcome) = run_campaign(comm, build_sim(comm.rank()), &cfg).unwrap();
            assert!(matches!(outcome.end, CampaignEnd::Completed));
            fingerprint32(&dump_rank_bytes(&sim, false).unwrap())
        },
    );
    let reference: Vec<u32> = results.into_iter().map(|r| r.unwrap()).collect();
    let _ = std::fs::remove_dir_all(&ref_dir);

    let mut completed = 0usize;
    let mut degraded = 0usize;
    for seed in 0..SOAK_PLANS {
        let plan = random_plan(seed);
        let mode = if seed.is_multiple_of(2) {
            RecoveryMode::HotSpare
        } else {
            RecoveryMode::Rollback
        };
        let dir = temp_dir(&format!("soak{seed}"));
        let ckpt_dir = dir.join("ckpt");
        let (results, _) = nanompi::run_socket_world(
            WORLD,
            nanompi::SocketAddrSpec::unix(dir.join("sock")),
            Some(plan),
            |comm| {
                let cfg = soak_config(&ckpt_dir, mode);
                let (sim, outcome) = run_campaign(comm, build_sim(comm.rank()), &cfg)
                    .map_err(|e| format!("unrecoverable: {e}"))?;
                let fp = fingerprint32(&dump_rank_bytes(&sim, false).map_err(|e| e.to_string())?);
                Ok::<_, String>((outcome, fp))
            },
        );

        let mut outcomes = Vec::new();
        for (rank, res) in results.into_iter().enumerate() {
            let res = res
                .unwrap_or_else(|p| panic!("plan {seed} ({mode:?}): rank {rank}: {}", p.message));
            outcomes.push(res.unwrap_or_else(|e| {
                panic!("plan {seed} ({mode:?}): rank {rank} failed hard: {e}")
            }));
        }
        if outcomes
            .iter()
            .all(|(o, _)| matches!(o.end, CampaignEnd::Completed))
        {
            completed += 1;
            for (rank, (_, fp)) in outcomes.iter().enumerate() {
                assert_eq!(
                    *fp, reference[rank],
                    "plan {seed} ({mode:?}): rank {rank} completed but diverged"
                );
            }
        } else {
            degraded += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("socket soak: {completed} completed bit-identically, {degraded} degraded gracefully");
    assert!(completed > 0, "soak never completed a single campaign");
}
