//! Distributed-vs-single-domain consistency through the public API: the
//! decomposed code must compute the same physics as one big domain.

use vpic::core::field_solver::{bcs_of, sync_e};
use vpic::core::{load_uniform, Grid, Momentum, ParticleBc, Rng, Simulation, Species};
use vpic::parallel::{DistributedSim, DomainSpec};

/// Langmuir oscillation: 4-rank decomposed run tracks the single-domain
/// field-energy history to a small relative tolerance.
#[test]
fn distributed_langmuir_matches_single_domain() {
    let global = (16usize, 4usize, 4usize);
    let cell = (0.25f32, 0.25f32, 0.25f32);
    let dt = Grid::courant_dt(1.0, cell, 0.9);
    let steps = 120usize;
    let kx = 2.0 * std::f32::consts::PI / (global.0 as f32 * cell.0);

    let seed_fields = |sim_fields: &mut vpic::core::FieldArray, g: &Grid| {
        for k in 1..=g.nz {
            for j in 1..=g.ny {
                for i in 1..=g.nx {
                    let x = g.x0 + (i as f32 - 0.5) * g.dx;
                    sim_fields.ex[g.voxel(i, j, k)] = 0.01 * (kx * x).sin();
                }
            }
        }
    };

    // Reference (particles loaded with per-domain RNG convention so both
    // runs own identical particle sets rank-by-rank is not possible here;
    // compare the *physics*: energy exchange histories agree closely).
    let g = Grid::periodic(global, cell, dt);
    let mut reference = Simulation::new(g, 1);
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(55);
    load_uniform(
        &mut e,
        &reference.grid,
        &mut rng,
        1.0,
        32,
        Momentum::thermal(0.01),
    );
    reference.add_species(e);
    let gr = reference.grid.clone();
    seed_fields(&mut reference.fields, &gr);
    sync_e(&mut reference.fields, &gr, bcs_of(&gr));
    let mut ref_hist = Vec::new();
    for _ in 0..steps {
        reference.step();
        ref_hist.push(reference.energies().field_e);
    }

    let (results, _) = nanompi::run_expect(4, move |comm| {
        let spec = DomainSpec {
            global_cells: global,
            cell,
            dt,
            topo: nanompi::CartTopology::new([4, 1, 1], [true, true, true]),
            global_bc: [ParticleBc::Periodic; 6],
            origin: (0.0, 0.0, 0.0),
        };
        let mut sim = DistributedSim::new(spec, comm.rank(), 1);
        let si = sim.add_species(Species::new("e", -1.0, 1.0));
        sim.load_uniform(si, 55, 1.0, 32, Momentum::thermal(0.01));
        let g = sim.grid.clone();
        seed_fields(&mut sim.fields, &g);
        sim.synchronize_fields(comm).unwrap();
        let mut hist = Vec::new();
        for _ in 0..steps {
            sim.step(comm).unwrap();
            let (fe, _, _) = sim.global_energies(comm).unwrap();
            hist.push(fe);
        }
        hist
    });
    let dist_hist = &results[0];

    // Same oscillation: compare the normalized energy histories. The
    // particle noise realizations differ, so allow a modest tolerance.
    let ref_peak = ref_hist.iter().cloned().fold(0.0f64, f64::max);
    for (i, (a, b)) in ref_hist.iter().zip(dist_hist.iter()).enumerate() {
        assert!(
            (a - b).abs() < 0.15 * ref_peak,
            "histories diverged at step {i}: {a} vs {b} (peak {ref_peak})"
        );
    }
}

/// Global invariants of a distributed thermal plasma: exact particle
/// count, near-exact energy, and traffic that matches the decomposition.
#[test]
fn distributed_invariants() {
    let (results, traffic) = nanompi::run_expect(8, |comm| {
        let spec = DomainSpec::periodic((16, 16, 8), (0.25, 0.25, 0.25), 0.1, 8);
        let mut sim = DistributedSim::new(spec, comm.rank(), 1);
        let si = sim.add_species(Species::new("e", -1.0, 1.0));
        sim.load_uniform(si, 77, 1.0, 8, Momentum::thermal(0.1));
        let n0 = sim.global_particles(comm).unwrap();
        let (fe0, fb0, ke0) = sim.global_energies(comm).unwrap();
        for _ in 0..30 {
            sim.step(comm).unwrap();
        }
        let n1 = sim.global_particles(comm).unwrap();
        let (fe1, fb1, ke1) = sim.global_energies(comm).unwrap();
        (
            n0,
            n1,
            fe0 + fb0 + ke0.iter().sum::<f64>(),
            fe1 + fb1 + ke1.iter().sum::<f64>(),
            sim.migrated,
        )
    });
    for (n0, n1, e0, e1, _) in &results {
        assert_eq!(n0, n1);
        assert!((e1 - e0).abs() / e0 < 0.03, "energy {e0} -> {e1}");
    }
    let migrated: u64 = results.iter().map(|r| r.4).sum();
    assert!(migrated > 100, "plasma too quiet: {migrated} migrations");
    // Every rank pair that is face-adjacent exchanged bytes.
    assert!(traffic.total_bytes > 0);
    assert!(traffic.max_rank_bytes() > 0);
}

/// Checkpoint / restart across the public API boundary, mid-oscillation.
#[test]
fn checkpoint_restart_through_public_api() {
    let g = Grid::periodic((6, 6, 6), (0.25, 0.25, 0.25), 0.08);
    let mut sim = Simulation::new(g, 1);
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(12);
    load_uniform(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        12,
        Momentum::thermal(0.05),
    );
    sim.add_species(e);
    for _ in 0..5 {
        sim.step();
    }
    let mut dump = Vec::new();
    vpic::core::checkpoint::save(&sim, &mut dump).unwrap();
    let mut restored = vpic::core::checkpoint::load(&mut dump.as_slice(), 1).unwrap();
    for _ in 0..5 {
        sim.step();
        restored.step();
    }
    assert_eq!(sim.species[0].store(), restored.species[0].store());
    assert_eq!(sim.fields.ey, restored.fields.ey);
    assert_eq!(sim.step_count, restored.step_count);
}
