//! Diagnostics pipeline contract tests: the async (worker-thread) sink
//! must produce science artifacts byte-identical to the sync oracle at
//! every pipeline count, across particle layouts and push kernels, and
//! a kill + rollback mid-campaign must never double-count a sample.

use vpic::core::push::PushKernel;
use vpic::core::store::Layout;
use vpic::diag::{DiagConfig, DiagMode};
use vpic::lpi::{run_lpi_campaign, LpiCampaignConfig, LpiCampaignEnd, LpiParams, LpiRun};
use vpic::nanompi::FaultPlan;

/// A short-transit SRS slab: small sponges and vacuum gaps keep
/// `measure_after` low so CI-sized runs collect a real sample window.
fn short_params(mode: DiagMode, layout: Layout, kernel: PushKernel, pipelines: usize) -> LpiParams {
    LpiParams {
        flat: 2.0,
        ramp: 1.0,
        vacuum: 2.0,
        ppc: 4,
        a0: 0.02,
        seed_frac: 0.2,
        sponge_cells: 8,
        ramp_periods: 1.0,
        layout,
        kernel,
        pipelines,
        diag: DiagConfig {
            mode,
            cadence: 16,
            queue_depth: 2, // small on purpose: exercises publisher backpressure
            decimation: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Run to a fixed step count past the transient and extract every
/// derived artifact as exact bits: the streaming progress JSON, the
/// spectrum and the spectrogram.
fn diag_artifacts(
    mode: DiagMode,
    layout: Layout,
    kernel: PushKernel,
    pipelines: usize,
) -> (String, Vec<(u64, u64)>, Vec<u64>) {
    let mut run = LpiRun::new(short_params(mode, layout, kernel, pipelines));
    let steps = run.measure_after + 160;
    run.run(steps);
    let (engine, stats) = run.diag_finish();
    let mut engine = engine.expect("diag mode is not off");
    assert_eq!(
        stats.consumed, stats.published,
        "sink lost snapshots: {stats:?}"
    );
    assert_eq!(stats.dropped, 0, "block backpressure must not drop");
    assert!(engine.total_samples() >= 160, "no measurement window");
    let progress = engine.progress_json();
    let spectrum = engine
        .spectrum()
        .iter()
        .map(|&(w, p)| (w.to_bits(), p.to_bits()))
        .collect();
    let sg = engine
        .spectrogram()
        .expect("≥ 8 samples")
        .power
        .into_iter()
        .flatten()
        .map(f64::to_bits)
        .collect();
    (progress, spectrum, sg)
}

/// The tentpole contract: at every (layout, kernel, pipelines) point the
/// async pipeline's artifacts carry exactly the bits the sync oracle
/// produces — offloading the spectra must not change a single ULP.
#[test]
fn async_matches_sync_across_layout_kernel_and_pipelines() {
    let combos = [
        (Layout::Aos, PushKernel::Scalar),
        (Layout::Aosoa, PushKernel::Scalar),
        (Layout::Aosoa, PushKernel::Lane),
    ];
    for (layout, kernel) in combos {
        for pipelines in [1usize, 2, 4, 8] {
            let tag = format!("{layout:?}/{kernel:?}/p{pipelines}");
            let sync = diag_artifacts(DiagMode::Sync, layout, kernel, pipelines);
            let asy = diag_artifacts(DiagMode::Async, layout, kernel, pipelines);
            assert_eq!(sync.0, asy.0, "{tag}: progress.json diverged");
            assert_eq!(sync.1, asy.1, "{tag}: spectrum bits diverged");
            assert_eq!(sync.2, asy.2, "{tag}: spectrogram bits diverged");
        }
    }
}

fn campaign_cfg(dir: &std::path::Path, steps: u64, interval: u64) -> LpiCampaignConfig {
    let mut cfg = LpiCampaignConfig::new(steps, interval, dir);
    cfg.sentinel.health_interval = 20;
    cfg.sentinel.max_energy_growth = 1e12; // the laser pumps energy in
    cfg
}

/// Kill the rank mid-measurement with the async sink active: the
/// campaign flushes in-flight snapshots, rolls back to the certified
/// checkpoint, re-seeds the engine from the sidecar and replays. The
/// final sample count, series bits and streamed `progress.json` must
/// match a clean sync campaign exactly — one sample per step, no
/// double-counting across the replayed window.
#[test]
fn killed_async_campaign_replays_without_double_counting() {
    let probe = LpiRun::new(short_params(
        DiagMode::Sync,
        Layout::default(),
        PushKernel::default(),
        1,
    ));
    let measure_after = probe.measure_after;
    drop(probe);
    let steps = measure_after + 120;
    let interval = 40;
    // Kill inside the measurement window, strictly between checkpoints,
    // with the restore point also past `measure_after`: the replayed
    // steps then re-publish snapshots the engine already saw once.
    let kill_at = measure_after + 60;
    let restore = (kill_at / interval) * interval;
    assert!(restore > measure_after && restore < kill_at);

    let dir_sync = std::env::temp_dir().join("diag_pipe_camp_sync");
    let _ = std::fs::remove_dir_all(&dir_sync);
    let clean = run_lpi_campaign(
        short_params(DiagMode::Sync, Layout::default(), PushKernel::default(), 1),
        &campaign_cfg(&dir_sync, steps, interval),
    )
    .unwrap();
    assert!(matches!(clean.end, LpiCampaignEnd::Completed));

    let dir_async = std::env::temp_dir().join("diag_pipe_camp_async");
    let _ = std::fs::remove_dir_all(&dir_async);
    let mut cfg = campaign_cfg(&dir_async, steps, interval);
    cfg.fault_plan = Some(FaultPlan::new(11).kill(0, kill_at));
    let faulted = run_lpi_campaign(
        short_params(DiagMode::Async, Layout::default(), PushKernel::default(), 1),
        &cfg,
    )
    .unwrap();
    assert!(matches!(faulted.end, LpiCampaignEnd::Completed));
    assert_eq!(faulted.recoveries.len(), 1, "{:?}", faulted.recoveries);
    assert_eq!(faulted.recoveries[0].restored_step, restore);

    // Physics bits agree (the existing campaign contract)...
    assert_eq!(faulted.state_fingerprint, clean.state_fingerprint);
    assert_eq!(faulted.reflectivity.to_bits(), clean.reflectivity.to_bits());
    // ...and so does everything the diagnostics engine accumulated.
    assert_eq!(faulted.diag.dropped, 0);
    assert_eq!(faulted.diag.consumed, faulted.diag.published);
    let mut ce = clean.diag_engine.expect("sync campaign keeps its engine");
    let mut fe = faulted
        .diag_engine
        .expect("async campaign keeps its engine");
    assert!(ce.total_samples() >= 120);
    assert_eq!(
        fe.total_samples(),
        ce.total_samples(),
        "rollback replay double-counted samples"
    );
    let cb: Vec<u64> = ce.samples().iter().map(|s| s.to_bits()).collect();
    let fb: Vec<u64> = fe.samples().iter().map(|s| s.to_bits()).collect();
    assert_eq!(fb, cb, "series bits diverged across kill + rollback");
    assert_eq!(fe.progress_json(), ce.progress_json());

    // The streamed artifact on disk is byte-identical too: both
    // campaigns ended at the same step with the same engine state.
    let a = std::fs::read(dir_sync.join("progress.json")).unwrap();
    let b = std::fs::read(dir_async.join("progress.json")).unwrap();
    assert_eq!(a, b, "streamed progress.json diverged");

    let _ = std::fs::remove_dir_all(&dir_sync);
    let _ = std::fs::remove_dir_all(&dir_async);
}
