//! Cross-crate physics validation through the public `vpic` API: the
//! fidelity bar the paper's claims rest on, enforced in CI-sized runs.

use vpic::core::field_solver::{bcs_of, sync_e};
use vpic::core::{load_two_stream, load_uniform, Grid, Momentum, Rng, Simulation, Species};
use vpic::diag::TimeSeries;

/// Langmuir oscillation frequency matches Bohm-Gross within a few percent.
#[test]
fn langmuir_frequency() {
    let dx = 0.25f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let g = Grid::periodic((16, 4, 4), (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, 1);
    let vth = 0.02f32;
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(1);
    load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 48, Momentum::thermal(vth));
    sim.add_species(e);
    let g = sim.grid.clone();
    let kx = 2.0 * std::f32::consts::PI / g.extent().0;
    for k in 1..=g.nz {
        for j in 1..=g.ny {
            for i in 1..=g.nx {
                let x = (i as f32 - 0.5) * g.dx;
                sim.fields.ex[g.voxel(i, j, k)] = 0.005 * (kx * x).sin();
            }
        }
    }
    sync_e(&mut sim.fields, &g, bcs_of(&g));
    let steps = (35.0 / g.dt as f64) as usize;
    let mut ts = TimeSeries::new("fe", g.dt as f64);
    for _ in 0..steps {
        sim.step();
        ts.push(sim.energies().field_e);
    }
    let omega = ts.dominant_omega() / 2.0; // field energy rings at 2ω
    let theory = (1.0 + 3.0 * (kx * vth) as f64 * (kx * vth) as f64).sqrt();
    assert!(
        (omega - theory).abs() / theory < 0.05,
        "Langmuir ω = {omega}, Bohm-Gross = {theory}"
    );
}

/// Two-stream instability grows exponentially at a rate below (but within
/// 3× of) the cold-beam maximum, then saturates by trapping.
#[test]
fn two_stream_growth_and_saturation() {
    let dx = 0.2f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let grid = Grid::periodic((32, 2, 2), (dx, dx, dx), dt);
    let mut sim = Simulation::new(grid, 1);
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(2);
    load_two_stream(&mut e, &sim.grid, &mut rng, 1.0, 64, 0.1, 0.005);
    sim.add_species(e);
    let steps = (55.0 / sim.grid.dt as f64) as usize;
    let mut ts = TimeSeries::new("fe", sim.grid.dt as f64);
    for _ in 0..steps {
        sim.step();
        ts.push(sim.energies().field_e.max(1e-300));
    }
    let (_, peak) = ts.min_max();
    let first = ts.samples[0];
    assert!(peak > 100.0 * first, "no instability: {first} -> {peak}");
    let sat = ts.samples.iter().position(|&v| v > 0.1 * peak).unwrap();
    let gamma = 0.5 * ts.growth_rate_in(sat / 3, sat);
    let bound = 1.0 / (2.0 * 2.0f64.sqrt());
    assert!(
        gamma > bound / 3.0 && gamma < 1.3 * bound,
        "γ = {gamma}, bound = {bound}"
    );
    // Saturation: the last quarter is no longer growing exponentially.
    let late = 0.5 * ts.growth_rate_in(3 * steps / 4, steps);
    assert!(
        late < 0.3 * gamma,
        "no saturation: late rate {late} vs {gamma}"
    );
}

/// Momentum conservation: total particle momentum of a drifting neutral
/// plasma is preserved (periodic box, no external fields).
#[test]
fn momentum_conservation() {
    let dx = 0.25f32;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
    let g = Grid::periodic((8, 8, 8), (dx, dx, dx), dt);
    let mut sim = Simulation::new(g, 1);
    let mut e = Species::new("e", -1.0, 1.0);
    let mut rng = Rng::seeded(3);
    load_uniform(
        &mut e,
        &sim.grid,
        &mut rng,
        1.0,
        16,
        Momentum::drifting_x(0.05, 0.02),
    );
    sim.add_species(e);
    let p0 = sim.species[0].momentum(&sim.grid);
    for _ in 0..50 {
        sim.step();
    }
    let p1 = sim.species[0].momentum(&sim.grid);
    // A uniformly drifting electron cloud carries current, which rings the
    // fields; momentum exchanges with the field at the few-percent level
    // but must not drain away secularly.
    assert!(
        (p1[0] - p0[0]).abs() / p0[0].abs() < 0.2,
        "px: {p0:?} -> {p1:?}"
    );
    assert!(p1[1].abs() < 0.05 * p0[0].abs());
}

/// The documented flop count matches the kernel: pushing N particles for
/// S steps advances exactly N·S particle-steps in the timing counters.
#[test]
fn advance_counters_are_exact() {
    let mut sim = {
        let dx = 0.25f32;
        let g = Grid::periodic((6, 6, 6), (dx, dx, dx), 0.1);
        let mut sim = Simulation::new(g, 2);
        let mut e = Species::new("e", -1.0, 1.0);
        let mut rng = Rng::seeded(4);
        load_uniform(&mut e, &sim.grid, &mut rng, 1.0, 8, Momentum::thermal(0.05));
        sim.add_species(e);
        sim
    };
    let n = sim.n_particles() as u64;
    for _ in 0..7 {
        sim.step();
    }
    assert_eq!(sim.timings.particle_steps, 7 * n);
    assert_eq!(sim.timings.voxel_steps, 7 * sim.grid.n_live() as u64);
    assert_eq!(sim.timings.steps, 7);
}
