//! End-to-end LPI pipeline through the public API: assemble a seeded SRS
//! run, check the instruments, and verify the theory helpers agree with
//! what the PIC measures at the coarse level a CI-sized run can resolve.

use vpic::lpi::{srs_match, tang_reflectivity, LpiParams, LpiRun, ThreeWaveModel};

/// The assembled run's geometry, instruments and bookkeeping hold
/// together, and a short seeded run measures a reflectivity at least at
/// the seed level (amplification ≥ 1) without losing particles in bulk.
#[test]
fn seeded_srs_run_is_self_consistent() {
    let params = LpiParams {
        n_over_ncr: 0.1,
        vth: 0.06,
        a0: 0.05,
        flat: 8.0,
        ramp: 3.0,
        ppc: 24,
        seed_frac: 0.15,
        ..Default::default()
    };
    let mut run = LpiRun::new(params);
    assert!(run.seed_antenna.is_some());
    let seed_plane = run.seed_antenna.unwrap().plane;
    assert!(seed_plane > run.probe.plane);
    let steps = run.suggested_steps(1.5);
    run.run(steps);
    let r = run.reflectivity();
    let seed_r = params.seed_frac * params.seed_frac;
    assert!(
        r > 0.3 * seed_r && r < 1.0,
        "reflectivity {r} implausible for seed level {seed_r}"
    );
    // Bulk plasma survived.
    let lost = run.sim.lost_particles as f64 / run.electron_species().len() as f64;
    assert!(lost < 0.05, "lost fraction {lost}");
    // Probe collected a full measurement window.
    assert!(run.probe.samples() > 100);
}

/// The SRS triad and the growth/damping helpers are mutually consistent
/// with the Tang model: more gain → more reflectivity, seed recovered at
/// zero gain.
#[test]
fn theory_chain_is_consistent() {
    let m = srs_match(0.1, 0.06);
    let g_low = m.linear_gain(0.01, 16.0);
    let g_high = m.linear_gain(0.08, 16.0);
    assert!(g_high > 10.0 * g_low);
    let seed = 1e-4;
    let r_low = tang_reflectivity(g_low, seed);
    let r_high = tang_reflectivity(g_high, seed);
    assert!(r_high > r_low);
    assert!((tang_reflectivity(0.0, seed) - seed).abs() < 1e-7);

    // The dynamical three-wave model agrees with Tang qualitatively:
    // below threshold both sit at the seed level.
    let below = ThreeWaveModel {
        gamma0: 0.2 * m.landau_damping(),
        nu_s: m.landau_damping(),
        nu_e: m.landau_damping(),
        nu_p: 0.05,
        seed: 1e-3,
    };
    let r = below.run(500.0, 0.1);
    assert!(r.reflectivity < 10.0 * 1e-6);
}

/// Laser resolution guard: every LpiRun keeps ≥ 12 cells per vacuum
/// wavelength across the density scan range.
#[test]
fn wavelength_resolution_across_densities() {
    for n_over_ncr in [0.05, 0.08, 0.1, 0.15, 0.2] {
        let params = LpiParams {
            n_over_ncr,
            flat: 4.0,
            ppc: 4,
            ..Default::default()
        };
        let run = LpiRun::new(params);
        let lambda0 = 2.0 * std::f32::consts::PI / run.srs.k0 as f32;
        assert!(
            lambda0 / run.sim.grid.dx >= 12.0,
            "n/ncr = {n_over_ncr}: {} cells/λ0",
            lambda0 / run.sim.grid.dx
        );
    }
}

/// The backward-wave spectrum at the probe peaks at the seed's frequency
/// ω_s — i.e. the spectral diagnostic correctly identifies the
/// SRS-matched backscatter line.
#[test]
fn backscatter_spectrum_peaks_at_omega_s() {
    let params = LpiParams {
        n_over_ncr: 0.1,
        vth: 0.06,
        a0: 0.04,
        flat: 8.0,
        ramp: 3.0,
        ppc: 16,
        seed_frac: 0.2,
        ..Default::default()
    };
    let mut run = LpiRun::new(params);
    let omega_s = run.srs.omega_s;
    let steps = run.suggested_steps(2.0);
    run.run(steps);
    let omega_max = run.srs.omega0 * 1.2;
    let (peak_omega, power) = run
        .backscatter_peak(omega_max)
        .expect("driven run has a backscatter spectrum");
    assert!(power > 0.0);
    assert!(
        (peak_omega - omega_s).abs() / omega_s < 0.1,
        "backscatter line at {peak_omega}, expected ω_s = {omega_s}"
    );
}

/// Mobile ions: the run stays stable and quasi-neutral over a short
/// window, and the ion species follows the plasma profile.
#[test]
fn mobile_ions_smoke() {
    let params = LpiParams {
        n_over_ncr: 0.1,
        vth: 0.06,
        a0: 0.02,
        flat: 6.0,
        ppc: 16,
        ion_mass: Some(100.0), // reduced mass for affordable ion timescales
        ti_over_te: 0.1,
        ..Default::default()
    };
    let mut run = LpiRun::new(params);
    let ions = run.ion_species().expect("ions loaded");
    // Charge neutrality in expectation: equal total weights.
    let we = run.electron_species().total_weight();
    let wi = ions.total_weight();
    assert!((we - wi).abs() / we < 0.05, "not neutral: {we} vs {wi}");
    let e0 = run.sim.energies().total();
    let n_ions0 = run.ion_species().unwrap().len();
    run.run(400);
    // The antenna pumps energy in, so "stable" means bounded growth (no
    // numerical blow-up), not conservation.
    let e1 = run.sim.energies().total();
    assert!(e1.is_finite() && e1 < 10.0 * e0, "blow-up: {e0} -> {e1}");
    let n_ions1 = run.ion_species().unwrap().len();
    assert!(
        n_ions1 as f64 > 0.95 * n_ions0 as f64,
        "ions drained: {n_ions0} -> {n_ions1}"
    );
}
