//! Seeded fault-soak for the serial LPI (SRS backscatter) campaign,
//! mirroring `tests/campaign_soak.rs` — closes the ROADMAP item "fault
//! injection in the LPI pipeline's long SRS runs".
//!
//! The soak (`#[ignore]`d; run it in release with
//! `cargo test --release -- --ignored`) generates random fault plans from
//! fixed seeds — rank kills plus transient NaN/huge-value field upsets —
//! and throws each at a laser-driven campaign. Every run must terminate
//! within its deadline and either complete bit-identically to the
//! fault-free reference (same `state_fingerprint`, energy and reflectivity bits)
//! or degrade gracefully to a partial dump plus a flight recorder.
//!
//! The non-ignored test runs a shrunk version of the shipped
//! `decks/srs_backscatter.deck` — same deck plumbing, same fault kinds,
//! minutes shorter — and demands bit-identical completion.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use vpic::core::sentinel::{CorruptionEvent, CorruptionMode, CorruptionPlan};
use vpic::lpi::{run_lpi_campaign, LpiCampaignConfig, LpiCampaignEnd, LpiParams};

const STEPS: u64 = 100;
const SOAK_PLANS: u64 = 16;
const PLAN_DEADLINE: Duration = Duration::from_secs(120);

fn small_params() -> LpiParams {
    LpiParams {
        flat: 4.0,
        ppc: 4,
        a0: 0.01,
        sponge_cells: 12,
        ..Default::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_srs_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn soak_cfg(dir: &Path) -> LpiCampaignConfig {
    let mut cfg = LpiCampaignConfig::new(STEPS, 25, dir);
    // The laser pumps energy into the box for the whole run, so the
    // ledger needs headroom; NaN/bounds monitors stay armed tight.
    cfg.sentinel.health_interval = 10;
    cfg.sentinel.max_energy_growth = 100.0;
    cfg.max_recoveries = 4;
    cfg
}

/// Bit-exact end-state digest: dump fingerprint plus the energy/reflectivity and
/// particle count of the final state.
type Digest = (u32, u64, u64, u64);

fn digest(out: &vpic::lpi::LpiCampaignOutcome) -> Digest {
    (
        out.state_fingerprint,
        out.energy.to_bits(),
        out.reflectivity.to_bits(),
        out.n_particles,
    )
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible random mix of the two fault kinds the serial campaign
/// supports: a rank kill and/or a seeded one-shot field upset.
fn random_faults(seed: u64, cfg: &mut LpiCampaignConfig) {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
    let kill = splitmix64(&mut s).is_multiple_of(2);
    if kill {
        let step = 10 + splitmix64(&mut s) % (STEPS - 20);
        cfg.fault_plan = Some(nanompi::FaultPlan::new(seed).kill(0, step));
    }
    if !kill || splitmix64(&mut s).is_multiple_of(2) {
        let mode = if splitmix64(&mut s).is_multiple_of(2) {
            CorruptionMode::Nan
        } else {
            CorruptionMode::Huge
        };
        cfg.corruption = Some(CorruptionPlan::new(seed).with_event(CorruptionEvent {
            step: 10 + splitmix64(&mut s) % (STEPS - 20),
            rank: Some(0),
            mode,
            count: 1 + (splitmix64(&mut s) % 8) as usize,
        }));
    }
}

#[test]
#[ignore = "fault soak: minutes of wall time; run with cargo test --release -- --ignored"]
fn seeded_srs_fault_soak_recovers_or_degrades_gracefully() {
    let ref_dir = temp_dir("reference");
    let clean = run_lpi_campaign(small_params(), &soak_cfg(&ref_dir)).unwrap();
    assert!(matches!(clean.end, LpiCampaignEnd::Completed));
    let clean_digest = digest(&clean);
    let _ = std::fs::remove_dir_all(&ref_dir);

    let mut completed = 0usize;
    let mut degraded = 0usize;
    for seed in 0..SOAK_PLANS {
        let dir = temp_dir(&format!("plan{seed}"));
        let mut cfg = soak_cfg(&dir);
        random_faults(seed, &mut cfg);
        let t0 = Instant::now();
        let out = run_lpi_campaign(small_params(), &cfg)
            .unwrap_or_else(|e| panic!("plan {seed} failed hard: {e:?}"));
        let elapsed = t0.elapsed();
        assert!(
            elapsed < PLAN_DEADLINE,
            "plan {seed} blew its deadline: {elapsed:?}"
        );
        match &out.end {
            LpiCampaignEnd::Completed => {
                completed += 1;
                assert!(
                    !out.recoveries.is_empty(),
                    "plan {seed} completed without exercising recovery"
                );
                assert_eq!(
                    digest(&out),
                    clean_digest,
                    "plan {seed} completed but diverged from the fault-free \
                     reference (recoveries: {:?})",
                    out.recoveries
                );
            }
            LpiCampaignEnd::Degraded {
                partial_dump,
                flight_recorder,
                ..
            } => {
                degraded += 1;
                assert!(
                    partial_dump.exists(),
                    "plan {seed} degraded without a partial dump"
                );
                let json = std::fs::read_to_string(flight_recorder)
                    .unwrap_or_else(|e| panic!("plan {seed}: unreadable flight recorder: {e}"));
                assert!(json.contains("\"samples\""), "plan {seed}: {json}");
            }
            LpiCampaignEnd::Halted { at_step } => {
                panic!("plan {seed} halted at step {at_step} without a checkpoint hook")
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("srs soak: {completed} plans completed bit-identically, {degraded} degraded");
    assert!(
        completed > 0,
        "soak never completed a single campaign — recovery is not working"
    );
}

/// Heal/rollback recovery is layout-independent: the same seeded NaN
/// upset, thrown at one campaign running AoS storage and one pinned to
/// `layout = aosoa`, must trigger the same sentinel verdict and rollback
/// in both, and both must finish with identical state fingerprint, energy and
/// reflectivity bits — checkpoints are canonical AoS bytes, so recovery
/// cannot tell the layouts apart.
#[test]
fn aosoa_campaign_recovers_bit_identically_to_aos() {
    let faulted_cfg = |dir: &Path| {
        let mut cfg = soak_cfg(dir);
        cfg.corruption = Some(CorruptionPlan::new(7).with_event(CorruptionEvent {
            step: 30,
            rank: Some(0),
            mode: CorruptionMode::Nan,
            count: 4,
        }));
        cfg
    };
    let mut digests = Vec::new();
    for layout in [vpic::core::Layout::Aos, vpic::core::Layout::Aosoa] {
        let dir = temp_dir(&format!("layout_{layout}"));
        let params = LpiParams {
            layout,
            ..small_params()
        };
        let out = run_lpi_campaign(params, &faulted_cfg(&dir)).unwrap();
        assert!(
            matches!(out.end, LpiCampaignEnd::Completed),
            "{layout}: {:?}",
            out.end
        );
        assert!(
            !out.recoveries.is_empty(),
            "{layout}: NaN upset never exercised recovery"
        );
        digests.push(digest(&out));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        digests[0], digests[1],
        "heal/rollback recovery diverged between AoS and AoSoA"
    );
}

/// Lane-kernel matrix on the shrunk SRS deck: at every pipeline count the
/// production lane kernel must retrace the scalar AoS oracle bit for bit
/// through a *fault-injected* campaign — the seeded NaN upset trips the
/// sentinel, the campaign rolls back to the last checkpoint and replays,
/// and the replayed lane-kernel trajectory still lands on the oracle's
/// exact digest. This pins the kernel contract through the recovery path,
/// not just the clean step loop. The matrix runs under the `auto` sort
/// cadence, so the adaptive controller's decisions are covered by the
/// same rollback-replay bit-identity contract.
#[test]
fn srs_lane_kernel_matrix_recovers_bit_identically_at_every_pipeline_count() {
    let steps = 60u64;
    let cfg_for = |dir: &Path| {
        let mut cfg = LpiCampaignConfig::new(steps, 20, dir);
        cfg.sentinel.health_interval = 10;
        cfg.sentinel.max_energy_growth = 100.0;
        cfg.max_recoveries = 4;
        cfg.corruption = Some(CorruptionPlan::new(11).with_event(CorruptionEvent {
            step: 30,
            rank: Some(0),
            mode: CorruptionMode::Nan,
            count: 4,
        }));
        cfg
    };
    for pipelines in [1usize, 2, 4, 8] {
        let mut digests = Vec::new();
        for (layout, kernel) in [
            (vpic::core::Layout::Aos, vpic::core::PushKernel::Scalar),
            (vpic::core::Layout::Aosoa, vpic::core::PushKernel::Lane),
        ] {
            let dir = temp_dir(&format!("kmatrix_{pipelines}_{layout}_{kernel}"));
            let params = LpiParams {
                layout,
                kernel,
                pipelines,
                sort: vpic::core::SortPolicy::Auto,
                ..small_params()
            };
            let out = run_lpi_campaign(params, &cfg_for(&dir)).unwrap();
            assert!(
                matches!(out.end, LpiCampaignEnd::Completed),
                "{layout}/{kernel} @{pipelines} pipes: {:?}",
                out.end
            );
            assert!(
                !out.recoveries.is_empty(),
                "{layout}/{kernel} @{pipelines} pipes: NaN upset never exercised rollback"
            );
            digests.push(digest(&out));
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(
            digests[0], digests[1],
            "lane kernel diverged from the scalar AoS oracle at {pipelines} pipelines"
        );
    }
}

/// Acceptance: the shipped SRS deck builds a fault-injected campaign, and
/// a shrunk version of it (same plumbing, shorter run, earlier faults)
/// detects the seeded kill *and* the seeded NaN upset, recovers from
/// both, and finishes bit-identically with the fault-free run.
#[test]
fn shrunk_srs_deck_campaign_recovers_bit_identically() {
    let text = std::fs::read_to_string("decks/srs_backscatter.deck").unwrap();
    let deck = vpic::deck::Deck::parse(&text).unwrap();
    let vpic::deck::BuiltRun::LpiCampaign(setup) = vpic::deck::build(&deck).unwrap() else {
        panic!("srs_backscatter.deck must build an LPI campaign")
    };
    let mut setup = *setup;
    // Shrink to test scale: a smaller plasma, a 60-step run, and the
    // deck's kill/corruption retimed to land inside it.
    setup.params.flat = 4.0;
    setup.params.ppc = 4;
    setup.params.sponge_cells = 12;
    setup.steps = 60;
    setup.checkpoint_interval = 20;
    if let Some(s) = setup.sentinel.as_mut() {
        s.sentinel.health_interval = 10;
        s.sentinel.max_energy_growth = 100.0;
    }
    setup.fault_plan = Some(nanompi::FaultPlan::new(deck.seed()).kill(0, 45));
    setup.corruption = Some(
        CorruptionPlan::new(deck.seed()).with_event(CorruptionEvent {
            step: 25,
            rank: Some(0),
            mode: CorruptionMode::Nan,
            count: 4,
        }),
    );

    let dir = temp_dir("deck");
    let faulted = run_lpi_campaign(setup.params, &setup.config(&dir)).unwrap();
    assert!(
        matches!(faulted.end, LpiCampaignEnd::Completed),
        "{:?}",
        faulted.end
    );
    assert_eq!(
        faulted.recoveries.len(),
        2,
        "expected one NaN rollback and one kill recovery: {:?}",
        faulted.recoveries
    );
    assert!(
        faulted.recoveries[0].cause.contains("health"),
        "first fault should be the sentinel verdict: {:?}",
        faulted.recoveries
    );
    let _ = std::fs::remove_dir_all(&dir);

    let clean_dir = temp_dir("deck_clean");
    setup.fault_plan = None;
    setup.corruption = None;
    let clean = run_lpi_campaign(setup.params, &setup.config(&clean_dir)).unwrap();
    assert!(matches!(clean.end, LpiCampaignEnd::Completed));
    assert_eq!(
        digest(&faulted),
        digest(&clean),
        "faulted deck campaign diverged from the fault-free run"
    );
    let _ = std::fs::remove_dir_all(&clean_dir);
}
