//! Seeded fault-soak for the campaign runtime, plus the compressed-dump
//! acceptance check on the shipped campaign deck.
//!
//! The soak (`#[ignore]`d; run it in release with
//! `cargo test --release -- --ignored`) generates 32 random fault plans
//! from fixed seeds — kills, random drops, delays, duplicates and payload
//! corruptions — and throws each at a 4-rank campaign, alternating
//! between rollback and hot-spare recovery. Every run must terminate
//! within its deadline and either complete bit-identically to the
//! fault-free reference (pipelines = 1) or degrade gracefully to a
//! partial dump. No hangs, no panics, no unrecoverable errors.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use vpic::core::{Momentum, Species};
use vpic::parallel::campaign::{
    run_campaign, CampaignConfig, CampaignEnd, CampaignOutcome, RecoveryMode,
};
use vpic::parallel::dcheckpoint::{dump_rank_bytes, load_rank};
use vpic::parallel::{DistributedSim, DomainSpec};

const RANKS: usize = 4;
const STEPS: u64 = 10;
const SOAK_PLANS: u64 = 32;
const PLAN_DEADLINE: Duration = Duration::from_secs(60);

fn spec() -> DomainSpec {
    DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, RANKS)
}

fn build_sim(rank: usize) -> DistributedSim {
    let mut sim = DistributedSim::new(spec(), rank, 1);
    let si = sim.add_species(Species::new("e", -1.0, 1.0));
    sim.load_uniform(si, 7, 1.0, 8, Momentum::thermal(0.08));
    sim
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_soak_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn soak_config(dir: &std::path::Path, mode: RecoveryMode) -> CampaignConfig {
    CampaignConfig::new(STEPS, 3, dir)
        .with_op_timeout(Duration::from_millis(150))
        .with_health_interval(2)
        .with_max_recoveries(5)
        .with_recovery(mode)
}

/// Per-rank final state for exact comparison.
type Snapshot = (u64, Vec<vpic::core::Particle>, Vec<f32>, Vec<f32>);

fn snapshot(sim: &DistributedSim) -> Snapshot {
    (
        sim.step_count,
        sim.species[0].to_particles(),
        sim.fields.ex.clone(),
        sim.fields.ey.clone(),
    )
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible random mix of every fault kind the plan supports.
fn random_plan(seed: u64) -> nanompi::FaultPlan {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
    let mut plan = nanompi::FaultPlan::new(seed);
    // Up to two kills at random (rank, step).
    for _ in 0..=(splitmix64(&mut s) % 2) {
        let rank = (splitmix64(&mut s) % RANKS as u64) as usize;
        let step = 1 + splitmix64(&mut s) % (STEPS - 1);
        plan = plan.kill(rank, step);
    }
    // Random drops on one rank, p <= 0.05.
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % RANKS as u64) as usize;
        let p = (splitmix64(&mut s) % 50) as f64 / 1000.0;
        plan = plan.drop_messages(rank, p);
    }
    // Random delays on one rank, p <= 0.1, <= 15 ms (under the 150 ms op
    // timeout, so delays slow the world down without faulting it).
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % RANKS as u64) as usize;
        let p = (splitmix64(&mut s) % 100) as f64 / 1000.0;
        let by = Duration::from_millis(1 + splitmix64(&mut s) % 15);
        plan = plan.delay_messages(rank, p, by);
    }
    // A duplicated and a corrupted message somewhere in the first few
    // hundred sends.
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % RANKS as u64) as usize;
        plan = plan.duplicate_message(rank, 1 + splitmix64(&mut s) % 300);
    }
    if splitmix64(&mut s).is_multiple_of(2) {
        let rank = (splitmix64(&mut s) % RANKS as u64) as usize;
        plan = plan.corrupt_message(rank, 1 + splitmix64(&mut s) % 300);
    }
    plan
}

/// The fault-free reference state every completed soak run must match.
fn reference() -> Vec<Snapshot> {
    let dir = temp_dir("reference");
    let (results, _) = nanompi::run_expect(RANKS, {
        let dir = dir.clone();
        move |comm| {
            let cfg = soak_config(&dir, RecoveryMode::Rollback);
            let (sim, outcome) = run_campaign(comm, build_sim(comm.rank()), &cfg).unwrap();
            assert!(matches!(outcome.end, CampaignEnd::Completed));
            snapshot(&sim)
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
    results
}

#[test]
#[ignore = "fault soak: minutes of wall time; run with cargo test --release -- --ignored"]
fn seeded_fault_soak_recovers_or_degrades_gracefully() {
    let clean = reference();
    let mut completed = 0usize;
    let mut degraded = 0usize;
    for seed in 0..SOAK_PLANS {
        let plan = random_plan(seed);
        let mode = if seed.is_multiple_of(2) {
            RecoveryMode::HotSpare
        } else {
            RecoveryMode::Rollback
        };
        let dir = temp_dir(&format!("plan{seed}"));
        let t0 = Instant::now();
        let (results, _) = nanompi::run_with_faults(RANKS, Some(plan), {
            let dir = dir.clone();
            move |comm| {
                let cfg = soak_config(&dir, mode);
                let (sim, outcome) = run_campaign(comm, build_sim(comm.rank()), &cfg)
                    .map_err(|e| format!("unrecoverable: {e}"))?;
                Ok::<_, String>((outcome, snapshot(&sim)))
            }
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < PLAN_DEADLINE,
            "plan {seed} ({mode:?}) blew its deadline: {elapsed:?}"
        );

        let mut outcomes: Vec<(CampaignOutcome, Snapshot)> = Vec::new();
        for (rank, res) in results.into_iter().enumerate() {
            let res = res.unwrap_or_else(|p| {
                panic!(
                    "plan {seed} ({mode:?}): rank {rank} panicked: {}",
                    p.message
                )
            });
            let ok = res
                .unwrap_or_else(|e| panic!("plan {seed} ({mode:?}): rank {rank} failed hard: {e}"));
            outcomes.push(ok);
        }
        let all_completed = outcomes
            .iter()
            .all(|(o, _)| matches!(o.end, CampaignEnd::Completed));
        if all_completed {
            completed += 1;
            for (rank, (_, snap)) in outcomes.iter().enumerate() {
                assert_eq!(
                    snap, &clean[rank],
                    "plan {seed} ({mode:?}): rank {rank} completed but diverged \
                     from the fault-free reference"
                );
            }
        } else {
            degraded += 1;
            for (rank, (o, _)) in outcomes.iter().enumerate() {
                if let CampaignEnd::Degraded { partial_dump, .. } = &o.end {
                    assert!(
                        partial_dump.exists(),
                        "plan {seed} ({mode:?}): rank {rank} degraded without a \
                         partial dump at {partial_dump:?}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("soak: {completed} plans completed bit-identically, {degraded} degraded gracefully");
    assert!(
        completed > 0,
        "soak never completed a single campaign — recovery is not working"
    );
}

/// Acceptance: compressed checkpoints on the shipped campaign deck
/// round-trip bit-exactly and are measurably smaller than uncompressed.
#[test]
fn campaign_deck_compressed_dumps_roundtrip_and_shrink() {
    let text = std::fs::read_to_string("decks/campaign_recovery.deck").unwrap();
    let deck = vpic::deck::Deck::parse(&text).unwrap();
    let vpic::deck::BuiltRun::Campaign(setup) = vpic::deck::build(&deck).unwrap() else {
        panic!("campaign_recovery.deck did not build a campaign")
    };
    let setup = *setup;
    let ranks = setup.ranks;
    let (results, _) = nanompi::run_expect(ranks, move |comm| {
        let mut sim = setup.build_rank(comm.rank());
        // A few steps of real dynamics so dumps carry non-trivial state.
        for _ in 0..4 {
            sim.step(comm).unwrap();
        }
        let raw = dump_rank_bytes(&sim, false).unwrap();
        let packed = dump_rank_bytes(&sim, true).unwrap();
        let restored = load_rank(sim.spec.clone(), comm.rank(), 1, &mut packed.as_slice()).unwrap();
        assert_eq!(restored.step_count, sim.step_count);
        assert_eq!(restored.species[0].store(), sim.species[0].store());
        assert_eq!(restored.fields.ex, sim.fields.ex);
        assert_eq!(restored.fields.ey, sim.fields.ey);
        assert_eq!(restored.fields.cbz, sim.fields.cbz);
        (raw.len(), packed.len())
    });
    for (rank, (raw, packed)) in results.into_iter().enumerate() {
        assert!(
            packed < raw,
            "rank {rank}: compressed dump ({packed} B) not smaller than raw ({raw} B)"
        );
        println!(
            "rank {rank}: dump {raw} B raw -> {packed} B compressed ({:.1}%)",
            100.0 * packed as f64 / raw as f64
        );
    }
}
