//! Distributed integration tests for the numerical-integrity sentinel:
//!
//! * a seeded Gauss-law violation is detected at the next health gate and
//!   repaired in place by an escalating Marder burst (no rollback);
//! * a seeded transient blow-up is detected within one `health_interval`,
//!   rolled back, and the campaign completes bit-identically with the
//!   fault-free run;
//! * with the recovery budget exhausted the campaign degrades gracefully
//!   to a partial dump plus a parseable flight-recorder JSON;
//! * the verdict is deterministic — identical on every rank and across
//!   worker counts (one shared reduction);
//! * deck `[sentinel]` knobs (cleaning cadence + thresholds) survive
//!   deck → `SimConfig` → v2/v3 checkpoint → restore unchanged.

use std::path::PathBuf;
use vpic::core::sentinel::{
    AnomalyKind, CorruptionEvent, CorruptionMode, CorruptionPlan, SentinelConfig, SimConfig,
};
use vpic::core::{Momentum, Species};
use vpic::parallel::campaign::{run_campaign, CampaignConfig, CampaignEnd, CampaignOutcome};
use vpic::parallel::dcheckpoint::{dump_rank_bytes, load_rank};
use vpic::parallel::{DistributedSim, DomainSpec};

const RANKS: usize = 4;
const STEPS: u64 = 10;

fn spec(ranks: usize) -> DomainSpec {
    DomainSpec::periodic((8, 4, 4), (0.25, 0.25, 0.25), 0.1, ranks)
}

/// A thermal electron plasma on the neutralizing background (Gauss
/// monitoring stays off — rho is electrons-only).
fn build_electrons(ranks: usize, rank: usize) -> DistributedSim {
    let mut sim = DistributedSim::new(spec(ranks), rank, 1);
    let si = sim.add_species(Species::new("e", -1.0, 1.0));
    sim.load_uniform(si, 7, 1.0, 8, Momentum::thermal(0.08));
    sim
}

/// A fully explicit charge-neutral plasma: electrons and an equal-mass
/// positive species loaded from the same stream land on identical
/// positions, so `rho` is exactly zero node-by-node and the Gauss
/// monitor sees pure numerical residual.
fn build_neutral(rank: usize) -> DistributedSim {
    let mut sim = DistributedSim::new(spec(RANKS), rank, 1);
    let e = sim.add_species(Species::new("e", -1.0, 1.0));
    sim.load_uniform(e, 7, 1.0, 8, Momentum::thermal(0.05));
    let p = sim.add_species(Species::new("p", 1.0, 1.0));
    sim.load_uniform(p, 7, 1.0, 8, Momentum::thermal(0.05));
    sim
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_sentinel_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Per-rank final state for exact comparison.
type Snapshot = (u64, Vec<vpic::core::Particle>, Vec<f32>, Vec<f32>);

fn snapshot(sim: &DistributedSim) -> Snapshot {
    (
        sim.step_count,
        sim.species[0].to_particles(),
        sim.fields.ex.clone(),
        sim.fields.cbz.clone(),
    )
}

/// A lone E spike violates Gauss's law; the sentinel must catch it at the
/// step-0 gate and heal it with escalating Marder bursts — no rollback,
/// and every rank records the identical heal ledger.
#[test]
fn seeded_divergence_is_healed_in_place() {
    let dir = temp_dir("heal");
    let cfg = CampaignConfig::new(STEPS, 3, &dir).with_sentinel(SentinelConfig {
        health_interval: 1,
        max_div_e_rms: 0.05,
        marder_passes: 16,
        max_marder_bursts: 8,
        ..Default::default()
    });
    let (results, _) = nanompi::run_expect(RANKS, {
        let cfg = cfg.clone();
        move |comm| {
            let mut sim = build_neutral(comm.rank());
            if comm.rank() == 0 {
                let v = sim.grid.voxel(1, 2, 2);
                sim.fields.ex[v] += 2.0;
            }
            let (_, outcome) = run_campaign(comm, sim, &cfg).unwrap();
            outcome
        }
    });
    let ledgers: Vec<String> = results
        .iter()
        .map(|o| {
            assert!(matches!(o.end, CampaignEnd::Completed), "{:?}", o.end);
            assert!(o.recoveries.is_empty(), "healing must not roll back");
            assert!(!o.heals.is_empty(), "no Marder burst ran");
            assert_eq!(o.heals[0].kind, AnomalyKind::GaussLawResidual);
            assert_eq!(o.heals[0].step, 0, "missed the first health gate");
            let last = o.heals.last().unwrap();
            assert!(last.healed, "ladder never settled: {:?}", o.heals);
            assert!(
                last.rms_after < o.heals[0].rms_before,
                "burst did not reduce the residual: {:?}",
                o.heals
            );
            format!("{:?}", o.heals)
        })
        .collect();
    for l in &ledgers[1..] {
        assert_eq!(l, &ledgers[0], "ranks disagree on the heal ledger");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn blowup_cfg(dir: &std::path::Path) -> CampaignConfig {
    CampaignConfig::new(STEPS, 3, dir)
        .with_health_interval(2)
        .with_max_recoveries(3)
}

/// Transient huge-value upset at step 5 (between health gates): detected
/// at the step-6 gate — within one `health_interval` — rolled back to the
/// certified-clean step-3 generation and replayed to a bit-identical end
/// state (the corruption is one-shot, modeling an SEU).
#[test]
fn blowup_rolls_back_and_completes_bit_identically() {
    let clean_dir = temp_dir("blowup_ref");
    let (clean, _) = nanompi::run_expect(RANKS, {
        let cfg = blowup_cfg(&clean_dir);
        move |comm| {
            let (sim, outcome) =
                run_campaign(comm, build_electrons(RANKS, comm.rank()), &cfg).unwrap();
            assert!(matches!(outcome.end, CampaignEnd::Completed));
            snapshot(&sim)
        }
    });
    let _ = std::fs::remove_dir_all(&clean_dir);

    let dir = temp_dir("blowup");
    let cfg =
        blowup_cfg(&dir).with_corruption(CorruptionPlan::new(99).with_event(CorruptionEvent {
            step: 5,
            rank: Some(0),
            mode: CorruptionMode::Huge,
            count: 4,
        }));
    let (results, _) = nanompi::run_expect(RANKS, {
        let cfg = cfg.clone();
        move |comm| {
            let (sim, outcome) =
                run_campaign(comm, build_electrons(RANKS, comm.rank()), &cfg).unwrap();
            (outcome, snapshot(&sim))
        }
    });
    let causes: Vec<&String> = results
        .iter()
        .map(|(o, _)| {
            assert!(matches!(o.end, CampaignEnd::Completed), "{:?}", o.end);
            assert_eq!(o.recoveries.len(), 1, "{:?}", o.recoveries);
            let r = &o.recoveries[0];
            assert_eq!(r.at_step, 6, "detection missed the next health gate");
            assert_eq!(r.restored_step, 3, "rolled back past the clean generation");
            assert!(r.cause.contains("health"), "unexpected cause: {}", r.cause);
            &r.cause
        })
        .collect();
    for c in &causes[1..] {
        assert_eq!(*c, causes[0], "ranks disagree on the verdict");
    }
    for (rank, (_, snap)) in results.iter().enumerate() {
        assert_eq!(
            snap, &clean[rank],
            "rank {rank} completed but diverged from the fault-free reference"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// With a zero recovery budget an unrepairable anomaly must end in
/// graceful degradation: a partial dump next to a flight-recorder JSON
/// whose last sample carries the verdict.
#[test]
fn exhausted_budget_degrades_with_flight_recorder() {
    let dir = temp_dir("degrade");
    let cfg = CampaignConfig::new(STEPS, 3, &dir)
        .with_health_interval(1)
        .with_max_recoveries(0)
        .with_corruption(CorruptionPlan::new(5).with_event(CorruptionEvent {
            step: 2,
            rank: Some(0),
            mode: CorruptionMode::Nan,
            count: 4,
        }));
    let (results, _) = nanompi::run_expect(RANKS, {
        let cfg = cfg.clone();
        move |comm| {
            let (_, outcome) =
                run_campaign(comm, build_electrons(RANKS, comm.rank()), &cfg).unwrap();
            outcome
        }
    });
    for o in &results {
        let CampaignEnd::Degraded {
            at_step,
            partial_dump,
            flight_recorder,
        } = &o.end
        else {
            panic!("rank {}: expected degradation, got {:?}", o.rank, o.end)
        };
        assert_eq!(*at_step, 2, "NaN upset missed at the injection step");
        assert!(partial_dump.exists(), "no partial dump at {partial_dump:?}");
        let json = std::fs::read_to_string(flight_recorder)
            .unwrap_or_else(|e| panic!("rank {}: unreadable flight recorder: {e}", o.rank));
        assert!(json.contains("\"samples\""), "{json}");
        assert!(json.contains("\"nonfinite_fields\""), "{json}");
        assert!(
            json.contains("\"verdict\":{\"kind\":\"nonfinite_fields\""),
            "no verdict in the flight recorder: {json}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The verdict must be bit-identical on every rank *and* across worker
/// counts: the sample is one shared sum, and a NaN count is exact in
/// floating point no matter how the domain is decomposed.
#[test]
fn verdict_is_identical_across_ranks_and_worker_counts() {
    let mut causes: Vec<String> = Vec::new();
    for ranks in [1usize, 2, 4] {
        let dir = temp_dir(&format!("det{ranks}"));
        let cfg = CampaignConfig::new(STEPS, 2, &dir)
            .with_health_interval(1)
            .with_max_recoveries(3)
            .with_corruption(CorruptionPlan::new(7).with_event(CorruptionEvent {
                step: 4,
                rank: Some(0),
                mode: CorruptionMode::Nan,
                count: 1,
            }));
        let (results, _) = nanompi::run_expect(ranks, {
            let cfg = cfg.clone();
            move |comm| {
                let (_, outcome) =
                    run_campaign(comm, build_electrons(ranks, comm.rank()), &cfg).unwrap();
                outcome
            }
        });
        for o in &results {
            let o: &CampaignOutcome = o;
            assert!(matches!(o.end, CampaignEnd::Completed), "{:?}", o.end);
            assert_eq!(o.recoveries.len(), 1);
            causes.push(o.recoveries[0].cause.clone());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    for c in &causes[1..] {
        assert_eq!(
            c, &causes[0],
            "verdict differs across ranks/worker counts: {causes:?}"
        );
    }
}

/// Satellite: `[sentinel]` deck knobs — the Marder cleaning cadence and
/// every sentinel threshold — survive deck → `SimConfig` → v3 checkpoint
/// → restore, and the same config survives the serial v2 format.
#[test]
fn sentinel_config_roundtrips_deck_to_checkpoint() {
    let text = "kind = plasma\nsteps = 4\nseed = 2\n\n[grid]\ncells = 8 4 4\ndx = 0.25\n\n\
         [species.electron]\ncharge = -1\nmass = 1\ndensity = 1\nppc = 4\nvth = 0.05\n\n\
         [campaign]\nranks = 2\ncheckpoint_interval = 2\n\n\
         [sentinel]\nhealth_interval = 5\nclean_div_e_interval = 6\nclean_div_b_interval = 9\n\
         max_energy_growth = 12.5\nmax_div_e_rms = 0.02\nmax_div_b_rms = 0.03\n\
         max_momentum = 40\nmax_particle_drift = 0.25\nmarder_passes = 8\n\
         max_marder_bursts = 5\nrecorder_len = 16\n";
    let deck = vpic::deck::Deck::parse(text).unwrap();
    let vpic::deck::BuiltRun::Campaign(setup) = vpic::deck::build(&deck).unwrap() else {
        panic!("expected a campaign deck")
    };
    let expected = SimConfig {
        clean_div_e_interval: 6,
        clean_div_b_interval: 9,
        sentinel: SentinelConfig {
            health_interval: 5,
            max_energy_growth: 12.5,
            max_div_e_rms: 0.02f32 as f64,
            max_div_b_rms: 0.03f32 as f64,
            max_momentum: 40.0,
            max_particle_drift: 0.25,
            marder_passes: 8,
            max_marder_bursts: 5,
            recorder_len: 16,
        },
    };
    assert_eq!(setup.sentinel, Some(expected));

    // v3 (distributed, per-rank) round-trip, compressed.
    let (results, _) = nanompi::run_expect(setup.ranks, {
        let setup = (*setup).clone();
        move |comm| {
            let mut sim = setup.build_rank(comm.rank());
            assert_eq!(sim.config, expected, "deck config not applied to the rank");
            for _ in 0..2 {
                sim.step(comm).unwrap();
            }
            let bytes = dump_rank_bytes(&sim, true).unwrap();
            let restored =
                load_rank(sim.spec.clone(), comm.rank(), 1, &mut bytes.as_slice()).unwrap();
            restored.config
        }
    });
    for restored in results {
        assert_eq!(restored, expected, "v3 checkpoint dropped the config");
    }

    // v2 (serial) round-trip of the same config.
    let dx = 0.25f32;
    let dt = vpic::core::Grid::courant_dt(1.0, (dx, dx, dx), 0.7);
    let g = vpic::core::Grid::periodic((4, 4, 4), (dx, dx, dx), dt);
    let mut sim = vpic::core::Simulation::new(g, 1);
    sim.set_config(&expected);
    let mut bytes = Vec::new();
    vpic::core::checkpoint::save(&sim, &mut bytes).unwrap();
    let restored = vpic::core::checkpoint::load(&mut bytes.as_slice(), 1).unwrap();
    assert_eq!(
        restored.config(),
        expected,
        "v2 checkpoint dropped the config"
    );
}
