//! Chaos soak for the crash-proof reflectivity-sweep service.
//!
//! The soak (`#[ignore]`d; run it in release with
//! `cargo test --release --test sweep_soak -- --ignored`) throws 16
//! seeded kill-the-orchestrator plans at a 3-point sweep: each plan
//! SIGKILLs the service either right after a journaled lease (before
//! the job starts) or at a seeded checkpoint certification (right
//! after its `Progress` record is durable). A fresh incarnation then
//! replays the WAL and finishes the sweep. Every plan must produce a
//! `reflectivity_curve.json` **byte-identical** with the unkilled
//! reference sweep's, and the journal's step accounting must show that
//! no job's physics was ever re-run past its last certified
//! checkpoint.
//!
//! Two shrunk non-ignored tests keep the same guarantees in tier-1 CI:
//! a single kill/resume cycle on a 2-point grid, and a poison job that
//! lands in quarantine after exactly `max_attempts` charged, backoff-
//! gated retries while the sweep completes over the surviving point.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use vpic::core::journal::Journal;
use vpic::core::queue::JobEvent;
use vpic::core::sentinel::{CorruptionEvent, CorruptionMode, CorruptionPlan};
use vpic::lpi::sweep::{
    SweepConfig, SweepEnd, SweepGrid, SweepKillPlan, SweepOutcome, SweepRunner, CURVE_NAME,
    WAL_NAME,
};
use vpic::lpi::LpiParams;

const STEPS: u64 = 40;
const INTERVAL: u64 = 10;
const SOAK_PLANS: u64 = 16;
const PLAN_DEADLINE: Duration = Duration::from_secs(120);
/// Safety net only; every plan needs exactly two incarnations.
const MAX_INCARNATIONS: usize = 8;

fn small_base() -> LpiParams {
    LpiParams {
        flat: 4.0,
        ppc: 4,
        a0: 0.01,
        sponge_cells: 12,
        ..Default::default()
    }
}

/// 3-point intensity scan; the other axes stay at the base point.
fn soak_grid() -> SweepGrid {
    let mut grid = SweepGrid::single(&small_base());
    grid.a0 = vec![0.01, 0.02, 0.03];
    grid
}

fn cfg(dir: &Path) -> SweepConfig {
    let mut cfg = SweepConfig::new(small_base(), STEPS, INTERVAL, dir);
    cfg.sentinel.health_interval = 10;
    cfg.sentinel.max_energy_growth = 100.0;
    cfg
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpic_sweepsoak_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Run incarnations until the sweep settles. Only the *first*
/// incarnation carries the kill plan: a resumed campaign re-certifies
/// its restored checkpoint before executing new physics, so re-arming
/// a small `after_certifications` every incarnation would kill the
/// service forever without it ever progressing — exactly like
/// rebooting a machine faster than it can recover.
fn run_until_settled(grid: &SweepGrid, dir: &Path, first_kill: SweepKillPlan) -> Vec<SweepOutcome> {
    let mut outs = Vec::new();
    for incarnation in 0..MAX_INCARNATIONS {
        let mut c = cfg(dir);
        if incarnation == 0 {
            c.kill = first_kill.clone();
        }
        let out = SweepRunner::new(grid.clone(), c)
            .run()
            .expect("sweep incarnation must not error");
        let settled = out.end == SweepEnd::Completed;
        outs.push(out);
        if settled {
            return outs;
        }
    }
    panic!("sweep did not settle within {MAX_INCARNATIONS} incarnations");
}

/// Fold per-incarnation step ledgers into one per-job total.
fn total_steps(outs: &[SweepOutcome]) -> BTreeMap<u64, u64> {
    let mut total = BTreeMap::new();
    for out in outs {
        for (&job, &steps) in &out.steps_by_job {
            *total.entry(job).or_insert(0) += steps;
        }
    }
    total
}

/// Replay the WAL and audit its step accounting: per job, certified
/// steps must be non-decreasing (a resumed job re-certifies its
/// restored step, then moves forward — physics re-run from before a
/// certified checkpoint would journal a *lower* step) and every
/// certification must predate the campaign's end.
fn audit_journal(dir: &Path, jobs: u64) {
    let mut progress: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut done: Vec<u64> = Vec::new();
    let (_, report) = Journal::open(dir.join(WAL_NAME), |payload| {
        match JobEvent::decode(payload).expect("journaled event decodes") {
            JobEvent::Progress {
                id, certified_step, ..
            } => progress.entry(id).or_default().push(certified_step),
            JobEvent::Done { id, .. } => done.push(id),
            _ => {}
        }
    })
    .expect("settled WAL replays");
    assert!(!report.torn_tail, "settled WAL must not be torn");
    assert_eq!(done.len(), jobs as usize, "exactly one Done per job");
    for (job, certs) in &progress {
        assert!(
            certs.windows(2).all(|w| w[0] <= w[1]),
            "job {job}: certified steps went backwards: {certs:?}"
        );
        assert!(
            certs.iter().all(|&s| s < STEPS),
            "job {job}: certification past campaign end: {certs:?}"
        );
    }
}

#[test]
#[ignore = "chaos soak: run with cargo test --release --test sweep_soak -- --ignored"]
fn killed_orchestrator_soak_is_bit_identical() {
    let grid = soak_grid();
    let jobs = grid.len() as u64;
    let certs_per_job = STEPS / INTERVAL; // checkpoints at 0, 10, 20, 30
    let total_certs = jobs * certs_per_job;

    // Fault-free reference: one incarnation, start to finish.
    let ref_dir = temp_dir("ref");
    let reference = SweepRunner::new(grid.clone(), cfg(&ref_dir))
        .run()
        .expect("reference sweep");
    assert_eq!(reference.end, SweepEnd::Completed);
    let ref_curve = std::fs::read(ref_dir.join(CURVE_NAME)).expect("reference curve");

    for seed in 0..SOAK_PLANS {
        let started = Instant::now();
        let roll = splitmix64(0xC0FF_EE00 ^ seed);
        // Three of four plans die at a seeded certification; the rest
        // die between the lease and the first step of a seeded job.
        let kill = if seed % 4 == 3 {
            SweepKillPlan {
                before_job: Some(roll % jobs),
                after_certifications: None,
            }
        } else {
            SweepKillPlan {
                after_certifications: Some(1 + roll % total_certs),
                before_job: None,
            }
        };

        let dir = temp_dir(&format!("plan{seed}"));
        let outs = run_until_settled(&grid, &dir, kill.clone());
        assert_eq!(
            outs[0].end,
            SweepEnd::Killed,
            "plan {seed} ({kill:?}) must actually fire"
        );
        assert_eq!(outs.len(), 2, "plan {seed}: one kill, one clean resume");

        // Bit-identical curve across kill/restart.
        let curve = std::fs::read(dir.join(CURVE_NAME)).expect("chaos curve");
        assert_eq!(
            curve, ref_curve,
            "plan {seed} ({kill:?}): curve differs from unfaulted reference"
        );

        // Step accounting: summed over incarnations, every job executed
        // exactly STEPS steps of physics — nothing was re-run past its
        // last certified checkpoint, nothing was skipped.
        let totals = total_steps(&outs);
        for job in 0..jobs {
            assert_eq!(
                totals.get(&job),
                Some(&STEPS),
                "plan {seed} ({kill:?}): job {job} step ledger {totals:?}"
            );
        }
        audit_journal(&dir, jobs);

        // Kills are free: orphaned leases are released uncharged.
        let last = outs.last().unwrap();
        assert_eq!(last.stats.total_failures, 0, "plan {seed}: charged a kill");
        for p in &last.curve.as_ref().unwrap().points {
            assert_eq!(p.attempts, 0, "plan {seed}: job {} charged", p.point.job_id);
        }

        assert!(
            started.elapsed() < PLAN_DEADLINE,
            "plan {seed} exceeded {PLAN_DEADLINE:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Shrunk, non-ignored slice of the soak: one seeded kill mid-job on a
/// 2-point grid, then a clean resume — bit-identical curve and exact
/// step accounting, cheap enough for tier-1 CI.
#[test]
fn killed_sweep_resumes_bit_identically() {
    let mut grid = soak_grid();
    grid.a0 = vec![0.01, 0.02];

    let ref_dir = temp_dir("mini_ref");
    let reference = SweepRunner::new(grid.clone(), cfg(&ref_dir))
        .run()
        .expect("reference sweep");
    assert_eq!(reference.end, SweepEnd::Completed);
    let ref_curve = std::fs::read(ref_dir.join(CURVE_NAME)).expect("reference curve");

    // Certification 6 is job 1's step-10 checkpoint (job 0 certifies
    // 0/10/20/30, then job 1 certifies 0 and 10): the kill lands with
    // job 0 done and job 1 in flight, mid-physics.
    let dir = temp_dir("mini_kill");
    let kill = SweepKillPlan {
        after_certifications: Some(6),
        before_job: None,
    };
    let outs = run_until_settled(&grid, &dir, kill);
    assert_eq!(outs[0].end, SweepEnd::Killed);
    assert_eq!(outs.len(), 2);
    assert_eq!(
        outs[1].orphans_released,
        vec![1],
        "job 1's lease was orphaned by the kill"
    );

    let curve = std::fs::read(dir.join(CURVE_NAME)).expect("resumed curve");
    assert_eq!(curve, ref_curve, "curve differs from unfaulted reference");

    // Incarnation 1 ran job 0 fully and job 1 to its certified step 10;
    // incarnation 2 resumed job 1 there and ran only the remainder.
    assert_eq!(outs[0].steps_by_job.get(&0), Some(&STEPS));
    assert_eq!(outs[0].steps_by_job.get(&1), Some(&10));
    assert_eq!(outs[1].steps_by_job.get(&0), None);
    assert_eq!(outs[1].steps_by_job.get(&1), Some(&(STEPS - 10)));
    audit_journal(&dir, 2);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A poison job — its campaign degrades on every attempt — must land in
/// `Quarantined` after exactly `max_attempts` charged, backoff-gated
/// retries, with its flight recorder on disk, while the sweep still
/// completes and emits a curve over the surviving point.
#[test]
fn poison_job_quarantines_after_exactly_n_attempts() {
    let mut grid = soak_grid();
    grid.a0 = vec![0.01, 0.02];

    let dir = temp_dir("poison");
    let mut c = cfg(&dir);
    c.retry.max_attempts = 3;
    c.retry.base_backoff_ms = 500;
    // Retries are the sweep's job: no in-campaign recovery budget, so
    // the injected NaN degrades the attempt deterministically (injected
    // at step 15, caught by the step-20 health check before the step-20
    // checkpoint is written — every retry resumes at step 10 and walks
    // back into the fault).
    c.campaign_max_recoveries = 0;
    c.corruption_for = vec![(
        0,
        None, // every attempt: the job is poison, not flaky
        CorruptionPlan::new(7).with_event(CorruptionEvent {
            step: 15,
            rank: None,
            mode: CorruptionMode::Nan,
            count: 4,
        }),
    )];

    let out = SweepRunner::new(grid, c).run().expect("sweep completes");
    assert_eq!(out.end, SweepEnd::Completed);
    assert_eq!(out.stats.done, 1);
    assert_eq!(out.stats.quarantined, 1);
    assert_eq!(out.stats.total_failures, 3, "exactly N charged attempts");

    let curve = out.curve.expect("curve over surviving points");
    assert_eq!(curve.points[0].attempts, 3);
    assert!(curve.points[0].result.is_none());
    let cause = curve.points[0]
        .quarantined
        .as_ref()
        .expect("poison point is marked quarantined");
    assert!(cause.contains("flight recorder"), "cause: {cause}");
    assert!(curve.points[1].result.is_some(), "survivor kept its result");
    assert!(curve.points[1].quarantined.is_none());

    // The flight recorder the cause points at is actually on disk.
    assert!(
        dir.join("job_000000").join("flight.json").exists(),
        "quarantined job must leave its flight recorder behind"
    );

    // WAL audit: three charged Failed records with strictly later
    // backoff gates (exponential doubling + seeded jitter), then the
    // terminal Quarantined marker — and nothing after it for job 0.
    let mut failed: Vec<(u32, u64)> = Vec::new();
    let mut quarantined_at: Option<usize> = None;
    let mut job0_events = 0usize;
    Journal::open(dir.join(WAL_NAME), |payload| {
        let ev = JobEvent::decode(payload).expect("journaled event decodes");
        let id = match &ev {
            JobEvent::Defined { id, .. }
            | JobEvent::Leased { id, .. }
            | JobEvent::Started { id, .. }
            | JobEvent::Progress { id, .. }
            | JobEvent::Done { id, .. }
            | JobEvent::Failed { id, .. }
            | JobEvent::Quarantined { id, .. }
            | JobEvent::Released { id } => *id,
        };
        if id != 0 {
            return;
        }
        job0_events += 1;
        match ev {
            JobEvent::Failed {
                attempt,
                ready_at_ms,
                ..
            } => failed.push((attempt, ready_at_ms)),
            JobEvent::Quarantined { .. } => quarantined_at = Some(job0_events),
            JobEvent::Done { .. } => panic!("poison job must never journal Done"),
            _ => {}
        }
    })
    .expect("settled WAL replays");
    assert_eq!(
        failed.iter().map(|f| f.0).collect::<Vec<_>>(),
        vec![1, 2, 3],
        "every attempt journals one charged Failed record"
    );
    assert!(
        failed.windows(2).all(|w| w[0].1 < w[1].1),
        "backoff gates must move forward: {failed:?}"
    );
    assert_eq!(
        quarantined_at,
        Some(job0_events),
        "Quarantined is the terminal record for the poison job"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
