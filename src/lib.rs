//! # vpic
//!
//! Umbrella crate for the Rust reproduction of **VPIC**, the 3D
//! relativistic electromagnetic particle-in-cell plasma code of
//! *"0.374 Pflop/s trillion-particle kinetic modeling of laser plasma
//! interaction on Roadrunner"* (Bowers, Albright, Bergen, Yin, Barker,
//! Kerbyson — SC 2008, Gordon Bell finalist).
//!
//! Re-exports the workspace crates:
//!
//! * [`core`] (`vpic-core`) — the PIC engine;
//! * [`parallel`] (`vpic-parallel`) — domain-decomposed runs over the
//!   in-process message-passing substrate [`nanompi`];
//! * [`diag`] (`vpic-diag`) — spectra, Poynting/reflectivity probes,
//!   distribution diagnostics;
//! * [`lpi`] (`vpic-lpi`) — laser–plasma interaction workloads (the
//!   paper's physics campaign);
//! * [`roadrunner`] (`roadrunner-model`) — analytic performance model of
//!   the Roadrunner machine.
//!
//! ## Quickstart
//!
//! ```
//! use vpic::core::{Grid, Simulation, Species, Rng, Momentum, load_uniform};
//!
//! // A small periodic thermal plasma, electrons on a neutralizing
//! // background, in normalized units (c = ωpe = 1).
//! let dx = 0.25;
//! let dt = Grid::courant_dt(1.0, (dx, dx, dx), 0.9);
//! let grid = Grid::periodic((8, 8, 8), (dx, dx, dx), dt);
//! let mut sim = Simulation::new(grid, 1);
//! let mut electrons = Species::new("electron", -1.0, 1.0);
//! let mut rng = Rng::seeded(7);
//! load_uniform(&mut electrons, &sim.grid, &mut rng, 1.0, 16, Momentum::thermal(0.05));
//! sim.add_species(electrons);
//! for _ in 0..10 {
//!     sim.step();
//! }
//! assert!(sim.energies().total().is_finite());
//! ```

pub mod deck;

pub use nanompi;
pub use roadrunner_model as roadrunner;
pub use vpic_core as core;
pub use vpic_diag as diag;
pub use vpic_lpi as lpi;
pub use vpic_parallel as parallel;
