//! Input decks: plain-text run descriptions in the spirit of VPIC's input
//! decks (which are C++ there; here a simple INI-like format), so a
//! simulation can be configured, launched and post-processed without
//! writing Rust. Used by the `vpic-run` binary.
//!
//! ```text
//! # two_stream.deck
//! kind = plasma
//! steps = 500
//!
//! [grid]
//! cells = 64 2 2
//! dx = 0.2
//! courant = 0.9
//! boundary = periodic
//!
//! [species.electron]
//! charge = -1
//! mass = 1
//! density = 1
//! ppc = 64
//! loader = two_stream      # or: thermal, juttner
//! drift = 0.1
//! vth = 0.005
//!
//! [output]
//! energy_interval = 10
//! ```
//!
//! `kind = lpi` decks instead carry a `[laser]` section (`a0`,
//! `n_over_ncr`, `vth`, `flat`, `ppc`, `seed_frac`, …) and build a seeded
//! SRS run.
//!
//! A `kind = plasma` deck with a `[campaign]` section instead builds a
//! fault-tolerant multi-rank campaign (see [`CampaignSetup`]): the box is
//! domain-decomposed over `ranks`, checkpointed every
//! `checkpoint_interval` steps (or on the Young/Daly optimum with
//! `checkpoint_interval = auto`, tuned by `mtbi_seconds` and
//! `auto_min_interval`/`auto_max_interval`), health-checked, and
//! automatically recovered on failure — by whole-world rollback or, with
//! `recovery = hot_spare`, by handing the dead rank to a replacement
//! thread. Dumps honour `compress = true|false` and an optional
//! `checkpoint_write_mbps` throttle. Fault-injection knobs
//! (`kill_rank`/`kill_step`, `drop_prob`, `fault_seed`) exercise the
//! recovery path on purpose.
//!
//! A `kind = lpi` deck with a `[campaign]` section runs the serial
//! fault-tolerant LPI campaign instead (`checkpoint_interval`,
//! `keep_checkpoints`, `max_recoveries`, `kill_step`).
//!
//! A `kind = lpi` deck with a `[sweep]` section runs the crash-proof
//! reflectivity-sweep service (see [`SweepSetup`]): the `[laser]`
//! section is the base deck, templated over comma-separated `a0` /
//! `n_over_ncr` / `vth` axis lists, each grid point driven as a
//! WAL-journaled job with leases (`lease_ms`), retry with backoff
//! (`max_attempts`, `base_backoff_ms`, `max_backoff_ms`,
//! `jitter_seed`) and quarantine, aggregated exactly-once into
//! `reflectivity_curve.json`. Re-running the same deck against the
//! same directory resumes the sweep instead of restarting it.
//!
//! Either campaign kind also honours a `[sentinel]` section
//! (numerical-integrity thresholds: `health_interval`,
//! `max_energy_growth`, `max_div_e_rms`, `max_div_b_rms`, `max_momentum`,
//! `max_particle_drift`, `marder_passes`, `max_marder_bursts`,
//! `recorder_len`, plus the periodic Marder-cleaning cadence
//! `clean_div_e_interval` / `clean_div_b_interval`) and a `[fault]` section injecting a seeded one-shot
//! field corruption (`corrupt_step`, `corrupt_count`,
//! `corrupt_mode = nan|huge`, `corrupt_rank`, `seed`) that the sentinel
//! must catch and recover from.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use nanompi::{FaultPlan, TransportKind};
use vpic_core::queue::RetryPolicy;
use vpic_core::sentinel::{
    CorruptionEvent, CorruptionMode, CorruptionPlan, SentinelConfig, SimConfig,
};
use vpic_core::{
    load_juttner, load_two_stream, load_uniform, FieldArray, Grid, Layout, Momentum, ParticleBc,
    PushKernel, Rng, Simulation, SortPolicy, Species, Sponge,
};
use vpic_diag::{Backpressure, DiagConfig, DiagMode};
use vpic_lpi::{
    LaserAntenna, LpiCampaignConfig, LpiParams, LpiRun, Polarization, SweepConfig, SweepGrid,
};
use vpic_parallel::campaign::{CampaignConfig, CheckpointPolicy, RecoveryMode};
use vpic_parallel::{DistributedSim, DomainSpec};

/// A parsed deck: sections of key → value.
#[derive(Clone, Debug, Default)]
pub struct Deck {
    /// Top-level (section-less) keys.
    pub globals: BTreeMap<String, String>,
    /// `[section]` keys, in file order.
    pub sections: Vec<(String, BTreeMap<String, String>)>,
}

/// Deck parsing/validation error.
#[derive(Debug)]
pub struct DeckError(pub String);

impl std::fmt::Display for DeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deck error: {}", self.0)
    }
}

impl std::error::Error for DeckError {}

fn err(msg: impl Into<String>) -> DeckError {
    DeckError(msg.into())
}

impl Deck {
    /// Parse deck text. `#` starts a comment; blank lines are ignored.
    pub fn parse(text: &str) -> Result<Deck, DeckError> {
        let mut deck = Deck::default();
        let mut current: Option<usize> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(format!("line {}: unterminated section", lineno + 1)))?
                    .trim()
                    .to_string();
                deck.sections.push((name, BTreeMap::new()));
                current = Some(deck.sections.len() - 1);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("line {}: expected key = value", lineno + 1)))?;
            let (key, value) = (key.trim().to_string(), value.trim().to_string());
            match current {
                Some(s) => {
                    deck.sections[s].1.insert(key, value);
                }
                None => {
                    deck.globals.insert(key, value);
                }
            }
        }
        Ok(deck)
    }

    /// First section with this exact name.
    pub fn section(&self, name: &str) -> Option<&BTreeMap<String, String>> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, kv)| kv)
    }

    /// All sections whose name starts with `prefix.` — returns
    /// `(suffix, keys)` pairs (e.g. `species.electron` → `electron`).
    pub fn sections_with_prefix(&self, prefix: &str) -> Vec<(&str, &BTreeMap<String, String>)> {
        let p = format!("{prefix}.");
        self.sections
            .iter()
            .filter_map(|(n, kv)| n.strip_prefix(&p).map(|suffix| (suffix, kv)))
            .collect()
    }

    /// Global `steps` (default 100) and `seed` (default 1).
    pub fn steps(&self) -> u64 {
        self.globals
            .get("steps")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100)
    }

    /// Run seed.
    pub fn seed(&self) -> u64 {
        self.globals
            .get("seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    }
}

fn get_f32(kv: &BTreeMap<String, String>, key: &str) -> Result<Option<f32>, DeckError> {
    match kv.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| err(format!("bad float for {key}: {v}"))),
    }
}

fn req_f32(kv: &BTreeMap<String, String>, key: &str, default: f32) -> Result<f32, DeckError> {
    Ok(get_f32(kv, key)?.unwrap_or(default))
}

fn get_usize(kv: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, DeckError> {
    match kv.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad integer for {key}: {v}"))),
    }
}

/// What a deck builds.
pub enum BuiltRun {
    /// A periodic/walled plasma box.
    Plasma(Box<Simulation>),
    /// A laser–plasma interaction run.
    Lpi(Box<LpiRun>),
    /// A fault-tolerant multi-rank campaign.
    Campaign(Box<CampaignSetup>),
    /// A fault-tolerant serial LPI campaign (`kind = lpi` + `[campaign]`).
    LpiCampaign(Box<LpiCampaignSetup>),
    /// A crash-proof reflectivity sweep (`kind = lpi` + `[sweep]`).
    Sweep(Box<SweepSetup>),
}

/// Build the run a deck describes.
pub fn build(deck: &Deck) -> Result<BuiltRun, DeckError> {
    match deck.globals.get("kind").map(String::as_str) {
        Some("plasma") | None if deck.section("campaign").is_some() => {
            build_campaign(deck).map(|c| BuiltRun::Campaign(Box::new(c)))
        }
        Some("plasma") | None => build_plasma(deck).map(|s| BuiltRun::Plasma(Box::new(s))),
        Some("lpi") if deck.section("sweep").is_some() => {
            build_sweep(deck).map(|s| BuiltRun::Sweep(Box::new(s)))
        }
        Some("lpi") if deck.section("campaign").is_some() => {
            build_lpi_campaign(deck).map(|c| BuiltRun::LpiCampaign(Box::new(c)))
        }
        Some("lpi") => build_lpi(deck).map(|r| BuiltRun::Lpi(Box::new(r))),
        Some(other) => Err(err(format!("unknown kind: {other}"))),
    }
}

/// Parse the optional `[sentinel]` section into a full [`SimConfig`]:
/// thresholds for the numerical-integrity monitors, starting from the
/// armed defaults ([`SentinelConfig::enabled`]), plus the periodic
/// Marder-cleaning cadence (`clean_div_e_interval` /
/// `clean_div_b_interval`, 0 = never). Returns `None` when the section
/// is absent (campaigns then fall back to the legacy `health_interval`
/// behavior).
fn parse_sentinel(deck: &Deck) -> Result<Option<SimConfig>, DeckError> {
    let Some(kv) = deck.section("sentinel") else {
        return Ok(None);
    };
    let d = SentinelConfig::enabled();
    let f =
        |key: &str, dv: f64| -> Result<f64, DeckError> { Ok(req_f32(kv, key, dv as f32)? as f64) };
    Ok(Some(SimConfig {
        clean_div_e_interval: get_usize(kv, "clean_div_e_interval", 0)?,
        clean_div_b_interval: get_usize(kv, "clean_div_b_interval", 0)?,
        sentinel: SentinelConfig {
            health_interval: get_u64(kv, "health_interval", d.health_interval)?,
            max_energy_growth: f("max_energy_growth", d.max_energy_growth)?,
            max_div_e_rms: f("max_div_e_rms", d.max_div_e_rms)?,
            max_div_b_rms: f("max_div_b_rms", d.max_div_b_rms)?,
            max_momentum: f("max_momentum", d.max_momentum)?,
            max_particle_drift: f("max_particle_drift", d.max_particle_drift)?,
            marder_passes: get_u64(kv, "marder_passes", d.marder_passes as u64)? as u32,
            max_marder_bursts: get_u64(kv, "max_marder_bursts", d.max_marder_bursts as u64)? as u32,
            recorder_len: get_usize(kv, "recorder_len", d.recorder_len)?,
        },
    }))
}

/// Parse the optional `[fault]` section into a seeded one-shot
/// [`CorruptionPlan`] (transient-upset injection; kills stay on the
/// `[campaign]` section's `kill_rank`/`kill_step` knobs).
fn parse_corruption(deck: &Deck) -> Result<Option<CorruptionPlan>, DeckError> {
    let Some(kv) = deck.section("fault") else {
        return Ok(None);
    };
    let step = match kv.get("corrupt_step") {
        None => return Ok(None),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad integer for corrupt_step: {v}")))?,
    };
    let mode = match kv.get("corrupt_mode").map(String::as_str) {
        None | Some("nan") => CorruptionMode::Nan,
        Some("huge") => CorruptionMode::Huge,
        Some(other) => {
            return Err(err(format!(
                "fault.corrupt_mode must be nan or huge, got {other}"
            )))
        }
    };
    let rank = match kv.get("corrupt_rank") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| err(format!("bad integer for corrupt_rank: {v}")))?,
        ),
    };
    let seed = get_u64(kv, "seed", deck.seed())?;
    Ok(Some(CorruptionPlan::new(seed).with_event(
        CorruptionEvent {
            step,
            rank,
            mode,
            count: get_usize(kv, "corrupt_count", 8)?,
        },
    )))
}

/// A campaign deck's optional `[laser]` section: a current-sheet antenna
/// at a *global* live x-plane. Each rank builds a local drive from it
/// ([`CampaignSetup::drive_for`]); only the plane's owner injects current.
#[derive(Clone, Copy, Debug)]
pub struct CampaignLaser {
    /// Global live x index of the antenna sheet (1-based).
    pub plane: usize,
    pub a0: f32,
    pub omega: f32,
    pub ramp_steps: u64,
    pub polarization: Polarization,
}

/// One species' loading recipe for a campaign deck. Campaign decks load
/// per-rank with [`DistributedSim::load_uniform`], so only uniform thermal
/// (optionally drifting) loading is available.
#[derive(Clone, Debug)]
pub struct CampaignSpecies {
    pub name: String,
    pub charge: f32,
    pub mass: f32,
    pub density: f32,
    pub ppc: usize,
    pub vth: f32,
    pub drift: f32,
}

/// Everything a deck's `[campaign]` section describes: the decomposed
/// problem, how to (re)build any rank's local simulation, the campaign
/// runtime knobs, and an optional fault-injection plan.
#[derive(Clone, Debug)]
pub struct CampaignSetup {
    /// World size.
    pub ranks: usize,
    /// Decomposed global problem.
    pub spec: DomainSpec,
    /// Species loading recipes (applied identically on every rank, with
    /// rank-decorrelated RNG streams).
    pub species: Vec<CampaignSpecies>,
    /// Run seed (also the per-rank loader seed base).
    pub seed: u64,
    /// Pipelines per rank (keep at 1 for bit-exact rollback replay).
    pub pipelines: usize,
    /// Particle storage layout on every rank.
    pub layout: Layout,
    /// AoSoA push kernel on every rank (bit-identical either way).
    pub kernel: PushKernel,
    /// Sort cadence on every rank's species. Cadence decisions feed only
    /// on deterministic counters, so `auto` keeps rollback replay exact.
    pub sort: SortPolicy,
    /// Total campaign steps.
    pub steps: u64,
    /// Checkpoint schedule: a fixed step interval or the Young/Daly
    /// auto mode.
    pub checkpoint: CheckpointPolicy,
    /// How killed ranks come back (rollback or hot-spare replacement).
    pub recovery: RecoveryMode,
    /// Allow delta+RLE compression of dump sections.
    pub compress: bool,
    /// Checkpoint write throttle, bytes/second.
    pub checkpoint_write_bps: Option<u64>,
    /// Explicit checkpoint directory (else `<out>/checkpoints`).
    pub dir: Option<PathBuf>,
    /// Checkpoint generations kept on disk.
    pub keep_checkpoints: usize,
    /// Recovery budget.
    pub max_recoveries: u32,
    /// Health-check cadence in steps.
    pub health_interval: u64,
    /// Per-operation communication timeout override, in milliseconds.
    pub op_timeout_ms: Option<u64>,
    /// Injected faults (kill / drop), if any.
    pub fault_plan: Option<FaultPlan>,
    /// Run config (cleaning cadence + sentinel thresholds) from a
    /// `[sentinel]` section, if present. Applied to every built rank so
    /// it rides the v3 checkpoint config section.
    pub sentinel: Option<SimConfig>,
    /// Seeded field corruption from a `[fault]` section, if present.
    pub corruption: Option<CorruptionPlan>,
    /// Which substrate the world runs over (`transport` deck global).
    pub transport: TransportKind,
    /// Optional laser antenna driven through the campaign loop.
    pub laser: Option<CampaignLaser>,
    /// Optional open-boundary damping layers (`[sponge]` section),
    /// evaluated in global x coordinates on every rank.
    pub sponge: Option<Sponge>,
}

impl CampaignSetup {
    /// Build rank `rank`'s local simulation (also used by rollback, which
    /// must reconstruct state from checkpoints, not from this builder).
    pub fn build_rank(&self, rank: usize) -> DistributedSim {
        let mut sim = DistributedSim::new(self.spec.clone(), rank, self.pipelines);
        sim.set_layout(self.layout);
        sim.set_kernel(self.kernel);
        for sp in &self.species {
            let si = sim.add_species(
                Species::new(&sp.name, sp.charge, sp.mass).with_sort_policy(self.sort),
            );
            sim.load_uniform(
                si,
                self.seed.wrapping_add(si as u64),
                sp.density,
                sp.ppc,
                Momentum::drifting_x(sp.vth, sp.drift),
            );
        }
        if let Some(c) = self.sentinel {
            sim.config = c;
        }
        sim.sponge = self.sponge;
        sim
    }

    /// The per-rank current drive for the deck's `[laser]` section: ranks
    /// whose x-slab contains the global antenna plane inject through a
    /// local [`LaserAntenna`] (each covers its own y–z patch); every other
    /// rank's drive is a no-op (but the closure still runs every step,
    /// keeping the call pattern uniform).
    pub fn drive_for(&self, rank: usize) -> impl Fn(&mut FieldArray, &Grid, u64) + Sync {
        let antenna = self.laser.and_then(|l| {
            let lx = self.spec.local_cells().0;
            let cx = self.spec.topo.coords_of(rank)[0];
            let lo = cx * lx; // global index of the plane left of this slab
            (l.plane > lo && l.plane <= lo + lx).then(|| LaserAntenna {
                plane: l.plane - lo,
                a0: l.a0,
                omega: l.omega,
                ramp_steps: l.ramp_steps,
                polarization: l.polarization,
            })
        });
        move |f: &mut FieldArray, g: &Grid, step: u64| {
            if let Some(a) = &antenna {
                a.drive(f, g, step);
            }
        }
    }

    /// The campaign runtime configuration, checkpointing into the deck's
    /// `dir` if set, else `<fallback>/checkpoints`.
    pub fn config(&self, fallback: &Path) -> CampaignConfig {
        let dir = self
            .dir
            .clone()
            .unwrap_or_else(|| fallback.join("checkpoints"));
        let mut cfg = CampaignConfig::new(self.steps, 0, dir)
            .with_checkpoint_policy(self.checkpoint)
            .with_recovery(self.recovery)
            .with_compression(self.compress)
            .with_write_throttle(self.checkpoint_write_bps)
            .with_max_recoveries(self.max_recoveries)
            .with_health_interval(self.health_interval);
        cfg.keep_checkpoints = self.keep_checkpoints;
        if let Some(ms) = self.op_timeout_ms {
            cfg = cfg.with_op_timeout(Duration::from_millis(ms));
        }
        if let Some(s) = self.sentinel {
            cfg = cfg.with_sentinel(s.sentinel);
        }
        if let Some(plan) = &self.corruption {
            cfg = cfg.with_corruption(plan.clone());
        }
        cfg
    }
}

/// Everything a `kind = lpi` deck's `[campaign]` section describes: the
/// LPI run parameters plus the serial campaign runtime knobs
/// (checkpoints, sentinel, seeded kills/corruption).
#[derive(Clone, Debug)]
pub struct LpiCampaignSetup {
    pub params: LpiParams,
    pub steps: u64,
    pub checkpoint_interval: u64,
    pub keep_checkpoints: usize,
    pub max_recoveries: u32,
    /// Explicit checkpoint directory (else `<out>/checkpoints`).
    pub dir: Option<PathBuf>,
    pub sentinel: Option<SimConfig>,
    pub corruption: Option<CorruptionPlan>,
    pub fault_plan: Option<FaultPlan>,
}

impl LpiCampaignSetup {
    /// The campaign runtime configuration, checkpointing into the deck's
    /// `dir` if set, else `<fallback>/checkpoints`.
    pub fn config(&self, fallback: &Path) -> LpiCampaignConfig {
        let dir = self
            .dir
            .clone()
            .unwrap_or_else(|| fallback.join("checkpoints"));
        let mut cfg = LpiCampaignConfig::new(self.steps, self.checkpoint_interval, dir);
        cfg.keep_checkpoints = self.keep_checkpoints;
        cfg.max_recoveries = self.max_recoveries;
        if let Some(s) = self.sentinel {
            cfg.sentinel = s.sentinel;
        }
        cfg.corruption = self.corruption.clone();
        cfg.fault_plan = self.fault_plan.clone();
        cfg
    }
}

fn build_lpi_campaign(deck: &Deck) -> Result<LpiCampaignSetup, DeckError> {
    let run = build_lpi(deck)?;
    let ckv = deck.section("campaign").expect("caller checked");
    let interval = get_u64(ckv, "checkpoint_interval", 50)?;
    let fault_seed = get_u64(ckv, "fault_seed", deck.seed())?;
    let fault_plan = match ckv.get("kill_step") {
        None => None,
        Some(v) => {
            let step: u64 = v
                .parse()
                .map_err(|_| err(format!("bad integer for kill_step: {v}")))?;
            Some(FaultPlan::new(fault_seed).kill(0, step))
        }
    };
    Ok(LpiCampaignSetup {
        params: run.params,
        steps: deck.steps(),
        checkpoint_interval: interval,
        keep_checkpoints: get_usize(ckv, "keep_checkpoints", 2)?.max(1),
        max_recoveries: get_u64(ckv, "max_recoveries", 3)? as u32,
        dir: ckv.get("dir").map(PathBuf::from),
        sentinel: parse_sentinel(deck)?,
        corruption: parse_corruption(deck)?,
        fault_plan,
    })
}

/// Everything a `kind = lpi` deck's `[sweep]` section describes: the
/// base LPI parameters, the `(a0, n/ncr, vth)` grid templated over
/// them, and the sweep-service knobs (WAL-backed queue, retry/backoff,
/// leases). Axes are comma-separated lists; an absent axis degenerates
/// to the base deck's single value.
#[derive(Clone, Debug)]
pub struct SweepSetup {
    pub params: LpiParams,
    pub grid: SweepGrid,
    pub steps: u64,
    pub checkpoint_interval: u64,
    /// Explicit sweep directory (else `<out>/sweep`).
    pub dir: Option<PathBuf>,
    pub retry: RetryPolicy,
    pub lease_ms: u64,
    pub campaign_max_recoveries: u32,
    pub sentinel: Option<SimConfig>,
    /// `[fault]` corruption plan, aimed at `corrupt_job`'s attempts.
    pub corruption: Option<CorruptionPlan>,
    pub corrupt_job: u64,
    /// Restrict the corruption to one attempt (1-based); `None` poisons
    /// every attempt of `corrupt_job` until it quarantines.
    pub corrupt_attempt: Option<u32>,
    /// Which substrate sweep workers run over (`transport` deck global).
    pub transport: TransportKind,
}

impl SweepSetup {
    /// The sweep-service configuration, journaling and checkpointing
    /// into the deck's `dir` if set, else `<fallback>/sweep`.
    pub fn config(&self, fallback: &Path) -> SweepConfig {
        let dir = self.dir.clone().unwrap_or_else(|| fallback.join("sweep"));
        let mut cfg = SweepConfig::new(self.params, self.steps, self.checkpoint_interval, dir);
        cfg.retry = self.retry.clone();
        cfg.lease_ms = self.lease_ms;
        cfg.campaign_max_recoveries = self.campaign_max_recoveries;
        if let Some(s) = self.sentinel {
            cfg.sentinel = s.sentinel;
        }
        if let Some(plan) = &self.corruption {
            cfg.corruption_for = vec![(self.corrupt_job, self.corrupt_attempt, plan.clone())];
        }
        cfg
    }
}

fn build_sweep(deck: &Deck) -> Result<SweepSetup, DeckError> {
    let run = build_lpi(deck)?;
    let skv = deck.section("sweep").expect("caller checked");
    let mut grid = SweepGrid::single(&run.params);
    if let Some(v) = get_f64_list(skv, "a0")? {
        grid.a0 = v;
    }
    if let Some(v) = get_f64_list(skv, "n_over_ncr")? {
        grid.n_over_ncr = v;
    }
    if let Some(v) = get_f64_list(skv, "vth")? {
        grid.vth = v;
    }
    if grid.is_empty() {
        return Err(err("sweep grid has an empty axis"));
    }
    let d = RetryPolicy::default();
    let fkv = deck.section("fault");
    let corrupt_attempt = match fkv.and_then(|kv| kv.get("attempt")) {
        None => None,
        Some(v) => Some(
            v.parse::<u32>()
                .map_err(|_| err(format!("bad integer for fault.attempt: {v}")))?,
        ),
    };
    Ok(SweepSetup {
        params: run.params,
        grid,
        steps: deck.steps(),
        checkpoint_interval: get_u64(skv, "checkpoint_interval", 50)?,
        dir: skv.get("dir").map(PathBuf::from),
        retry: RetryPolicy {
            max_attempts: (get_u64(skv, "max_attempts", d.max_attempts as u64)? as u32).max(1),
            base_backoff_ms: get_u64(skv, "base_backoff_ms", d.base_backoff_ms)?,
            max_backoff_ms: get_u64(skv, "max_backoff_ms", d.max_backoff_ms)?,
            jitter_seed: get_u64(skv, "jitter_seed", deck.seed())?,
        },
        lease_ms: get_u64(skv, "lease_ms", 10_000)?,
        campaign_max_recoveries: get_u64(skv, "max_recoveries", 1)? as u32,
        sentinel: parse_sentinel(deck)?,
        corruption: parse_corruption(deck)?,
        corrupt_job: fkv.map_or(Ok(0), |kv| get_u64(kv, "job", 0))?,
        corrupt_attempt,
        transport: parse_transport(deck)?,
    })
}

/// Comma-separated list of floats (`a0 = 0.01, 0.02, 0.05`).
fn get_f64_list(kv: &BTreeMap<String, String>, key: &str) -> Result<Option<Vec<f64>>, DeckError> {
    let Some(v) = kv.get(key) else {
        return Ok(None);
    };
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| err(format!("bad number in {key} list: {s}")))
        })
        .collect::<Result<Vec<f64>, DeckError>>()
        .map(Some)
}

/// Global `transport = local|socket` knob (default local): which
/// substrate a campaign or sweep world runs over.
fn parse_transport(deck: &Deck) -> Result<TransportKind, DeckError> {
    match deck.globals.get("transport") {
        None => Ok(TransportKind::default()),
        Some(v) => TransportKind::parse(v)
            .ok_or_else(|| err(format!("transport must be local or socket, got {v}"))),
    }
}

/// Global `layout = aos|aosoa` knob (default aos).
fn parse_layout(deck: &Deck) -> Result<Layout, DeckError> {
    match deck.globals.get("layout") {
        None => Ok(Layout::default()),
        Some(v) => {
            Layout::parse(v).ok_or_else(|| err(format!("layout must be aos or aosoa, got {v}")))
        }
    }
}

/// Global `kernel = scalar|lane` knob selecting the AoSoA push body
/// (default lane — the production kernel). Bit-identical by contract, so
/// this is an ablation/diagnosis switch, not a physics knob.
fn parse_kernel(deck: &Deck) -> Result<PushKernel, DeckError> {
    match deck.globals.get("kernel") {
        None => Ok(PushKernel::default()),
        Some(v) => PushKernel::parse(v)
            .ok_or_else(|| err(format!("kernel must be scalar or lane, got {v}"))),
    }
}

/// Global `sort_interval = auto|<n>` knob selecting the per-species sort
/// cadence (default the historical fixed 25; `0` disables sorting;
/// `auto` arms the coherence-driven controller). Accepts both
/// `sort_interval = auto` and `= "auto"`, like `checkpoint_interval`.
fn parse_sort_policy(deck: &Deck) -> Result<SortPolicy, DeckError> {
    match deck.globals.get("sort_interval") {
        None => Ok(SortPolicy::default()),
        Some(v) => SortPolicy::parse(v).ok_or_else(|| {
            err(format!(
                "sort_interval must be auto or a step count, got {v}"
            ))
        }),
    }
}

/// Diagnostics-pipeline knobs: a bare global `diag = off|sync|async`
/// shorthand for just the mode, plus an optional `[diag]` section
/// (`mode`, `cadence`, `queue_depth`, `decimation`, `series_cap`,
/// `backpressure = block|drop`). `sync` keeps the inline oracle path;
/// `async` hands snapshots to the bounded-queue worker — bit-identical
/// artifacts by contract, so like `kernel` this is a performance knob,
/// not a physics knob.
fn parse_diag(deck: &Deck) -> Result<DiagConfig, DeckError> {
    let mut cfg = DiagConfig::default();
    if let Some(v) = deck.globals.get("diag") {
        cfg.mode = DiagMode::parse(v)
            .ok_or_else(|| err(format!("diag must be off, sync or async, got {v}")))?;
    }
    let Some(kv) = deck.section("diag") else {
        return Ok(cfg);
    };
    if let Some(v) = kv.get("mode") {
        cfg.mode = DiagMode::parse(v)
            .ok_or_else(|| err(format!("diag.mode must be off, sync or async, got {v}")))?;
    }
    cfg.cadence = get_u64(kv, "cadence", cfg.cadence)?.max(1);
    cfg.queue_depth = get_usize(kv, "queue_depth", cfg.queue_depth)?.max(1);
    cfg.decimation = get_usize(kv, "decimation", cfg.decimation)?.max(1);
    cfg.series_cap = get_usize(kv, "series_cap", cfg.series_cap)?;
    if let Some(v) = kv.get("backpressure") {
        cfg.backpressure = Backpressure::parse(v)
            .ok_or_else(|| err(format!("diag.backpressure must be block or drop, got {v}")))?;
    }
    Ok(cfg)
}

fn get_u64(kv: &BTreeMap<String, String>, key: &str, default: u64) -> Result<u64, DeckError> {
    match kv.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad integer for {key}: {v}"))),
    }
}

fn build_campaign(deck: &Deck) -> Result<CampaignSetup, DeckError> {
    let gkv = deck
        .section("grid")
        .ok_or_else(|| err("missing [grid] section"))?;
    let cells_str = gkv.get("cells").ok_or_else(|| err("grid.cells required"))?;
    let cells: Vec<usize> = cells_str
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| err(format!("bad cells: {cells_str}")))
        })
        .collect::<Result<_, _>>()?;
    if cells.len() != 3 {
        return Err(err("grid.cells wants three integers"));
    }
    if let Some(b) = gkv.get("boundary") {
        if b != "periodic" {
            return Err(err("campaign runs support only boundary = periodic"));
        }
    }
    let dx = req_f32(gkv, "dx", 0.25)?;
    let courant = req_f32(gkv, "courant", 0.9)?;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), courant);

    let ckv = deck.section("campaign").expect("caller checked");
    let ranks = get_usize(ckv, "ranks", 4)?;
    if ranks == 0 {
        return Err(err("campaign.ranks must be at least 1"));
    }
    let spec = DomainSpec::periodic((cells[0], cells[1], cells[2]), (dx, dx, dx), dt, ranks);
    for (axis, &g) in cells.iter().enumerate() {
        if !g.is_multiple_of(spec.topo.dims[axis]) {
            return Err(err(format!(
                "grid.cells axis {axis} ({g}) not divisible by the {ranks}-rank topology \
                 ({}x{}x{})",
                spec.topo.dims[0], spec.topo.dims[1], spec.topo.dims[2]
            )));
        }
    }

    let mut species = Vec::new();
    for (name, kv) in deck.sections_with_prefix("species") {
        match kv.get("loader").map(String::as_str).unwrap_or("thermal") {
            "thermal" => {}
            other => {
                return Err(err(format!(
                    "campaign species only support loader = thermal, got {other}"
                )))
            }
        }
        species.push(CampaignSpecies {
            name: name.to_string(),
            charge: req_f32(kv, "charge", -1.0)?,
            mass: req_f32(kv, "mass", 1.0)?,
            density: req_f32(kv, "density", 1.0)?,
            ppc: get_usize(kv, "ppc", 32)?,
            vth: req_f32(kv, "vth", 0.05)?,
            drift: req_f32(kv, "drift", 0.0)?,
        });
    }
    if species.is_empty() {
        return Err(err("at least one [species.<name>] section required"));
    }

    // Fault-injection knobs: a deterministic kill and/or random drops.
    let fault_seed = get_u64(ckv, "fault_seed", deck.seed())?;
    let mut plan = FaultPlan::new(fault_seed);
    let mut any_fault = false;
    match (ckv.get("kill_rank"), ckv.get("kill_step")) {
        (None, None) => {}
        (Some(r), Some(s)) => {
            let rank: usize = r
                .parse()
                .map_err(|_| err(format!("bad integer for kill_rank: {r}")))?;
            let step: u64 = s
                .parse()
                .map_err(|_| err(format!("bad integer for kill_step: {s}")))?;
            if rank >= ranks {
                return Err(err(format!(
                    "kill_rank {rank} out of range for {ranks} ranks"
                )));
            }
            plan = plan.kill(rank, step);
            any_fault = true;
        }
        _ => return Err(err("kill_rank and kill_step must be given together")),
    }
    if let Some(p) = get_f32(ckv, "drop_prob")? {
        if !(0.0..=1.0).contains(&p) {
            return Err(err(format!("drop_prob must be in [0, 1], got {p}")));
        }
        if p > 0.0 {
            for rank in 0..ranks {
                plan = plan.drop_messages(rank, p as f64);
            }
            any_fault = true;
        }
    }

    let steps = deck.steps();
    // Accept both `checkpoint_interval = auto` and `= "auto"`.
    let checkpoint = match ckv.get("checkpoint_interval").map(|v| v.trim_matches('"')) {
        Some("auto") => {
            let mtbi = req_f32(ckv, "mtbi_seconds", 3600.0)?;
            if mtbi <= 0.0 {
                return Err(err("campaign.mtbi_seconds must be positive"));
            }
            let min_interval = get_u64(ckv, "auto_min_interval", 1)?.max(1);
            let max_interval = get_u64(ckv, "auto_max_interval", steps.max(1))?;
            if max_interval < min_interval {
                return Err(err(format!(
                    "campaign.auto_max_interval ({max_interval}) below auto_min_interval \
                     ({min_interval})"
                )));
            }
            CheckpointPolicy::Auto {
                mtbi: Duration::from_secs_f64(mtbi as f64),
                min_interval,
                max_interval,
            }
        }
        _ => {
            let interval = get_u64(ckv, "checkpoint_interval", 10)?;
            if interval == 0 {
                return Err(err("campaign.checkpoint_interval must be at least 1"));
            }
            CheckpointPolicy::Fixed(interval)
        }
    };
    let recovery = match ckv.get("recovery").map(String::as_str) {
        None | Some("rollback") => RecoveryMode::Rollback,
        Some("hot_spare") => RecoveryMode::HotSpare,
        Some(other) => {
            return Err(err(format!(
                "campaign.recovery must be rollback or hot_spare, got {other}"
            )))
        }
    };
    let compress = match ckv.get("compress").map(String::as_str) {
        None | Some("true") => true,
        Some("false") => false,
        Some(other) => return Err(err(format!("bad boolean for compress: {other}"))),
    };
    let checkpoint_write_bps = match get_f32(ckv, "checkpoint_write_mbps")? {
        None => None,
        Some(mbps) if mbps > 0.0 => Some((mbps as f64 * 1e6) as u64),
        Some(mbps) => {
            return Err(err(format!(
                "campaign.checkpoint_write_mbps must be positive, got {mbps}"
            )))
        }
    };
    // Optional antenna at a global x-plane (SRS-style drive) and
    // open-boundary damping layers, both applied identically whichever
    // rank topology or transport the world runs on.
    let laser = match deck.section("laser") {
        None => None,
        Some(kv) => {
            let plane = get_usize(kv, "plane", 1)?;
            if plane == 0 || plane > cells[0] {
                return Err(err(format!(
                    "laser.plane {plane} outside the global x range 1..={}",
                    cells[0]
                )));
            }
            let polarization = match kv.get("polarization").map(String::as_str) {
                None | Some("y") => Polarization::Y,
                Some("z") => Polarization::Z,
                Some(other) => {
                    return Err(err(format!(
                        "laser.polarization must be y or z, got {other}"
                    )))
                }
            };
            Some(CampaignLaser {
                plane,
                a0: req_f32(kv, "a0", 0.05)?,
                omega: req_f32(kv, "omega", 1.2)?,
                ramp_steps: get_u64(kv, "ramp_steps", 0)?,
                polarization,
            })
        }
    };
    let sponge = match deck.section("sponge") {
        None => None,
        Some(kv) => {
            let strength = req_f32(kv, "strength", 0.1)?;
            if !(0.0..=1.0).contains(&strength) {
                return Err(err(format!(
                    "sponge.strength must be in [0, 1], got {strength}"
                )));
            }
            Some(Sponge {
                lo_cells: get_usize(kv, "lo_cells", 0)?,
                hi_cells: get_usize(kv, "hi_cells", 0)?,
                strength,
            })
        }
    };
    Ok(CampaignSetup {
        ranks,
        spec,
        species,
        seed: deck.seed(),
        pipelines: get_usize(&deck.globals, "pipelines", 1)?,
        layout: parse_layout(deck)?,
        kernel: parse_kernel(deck)?,
        sort: parse_sort_policy(deck)?,
        steps,
        checkpoint,
        recovery,
        compress,
        checkpoint_write_bps,
        dir: ckv.get("dir").map(PathBuf::from),
        keep_checkpoints: get_usize(ckv, "keep_checkpoints", 2)?.max(1),
        max_recoveries: get_u64(ckv, "max_recoveries", 3)? as u32,
        health_interval: get_u64(ckv, "health_interval", 1)?,
        op_timeout_ms: match ckv.get("op_timeout_ms") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| err(format!("bad integer for op_timeout_ms: {v}")))?,
            ),
        },
        fault_plan: any_fault.then_some(plan),
        sentinel: parse_sentinel(deck)?,
        corruption: parse_corruption(deck)?,
        transport: parse_transport(deck)?,
        laser,
        sponge,
    })
}

fn build_plasma(deck: &Deck) -> Result<Simulation, DeckError> {
    let gkv = deck
        .section("grid")
        .ok_or_else(|| err("missing [grid] section"))?;
    let cells_str = gkv.get("cells").ok_or_else(|| err("grid.cells required"))?;
    let cells: Vec<usize> = cells_str
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| err(format!("bad cells: {cells_str}")))
        })
        .collect::<Result<_, _>>()?;
    if cells.len() != 3 {
        return Err(err("grid.cells wants three integers"));
    }
    let dx = req_f32(gkv, "dx", 0.25)?;
    let courant = req_f32(gkv, "courant", 0.9)?;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), courant);
    let bc = match gkv
        .get("boundary")
        .map(String::as_str)
        .unwrap_or("periodic")
    {
        "periodic" => [ParticleBc::Periodic; 6],
        "reflecting" => [
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ],
        other => return Err(err(format!("unknown boundary: {other}"))),
    };
    let grid = Grid::new((cells[0], cells[1], cells[2]), (dx, dx, dx), dt, bc);
    let pipelines = get_usize(&deck.globals, "pipelines", 1)?;
    let mut sim = Simulation::new(grid, pipelines);
    sim.set_layout(parse_layout(deck)?);
    sim.set_kernel(parse_kernel(deck)?);
    let sort = parse_sort_policy(deck)?;

    let species = deck.sections_with_prefix("species");
    if species.is_empty() {
        return Err(err("at least one [species.<name>] section required"));
    }
    let mut rng = Rng::seeded(deck.seed());
    for (name, kv) in species {
        let q = req_f32(kv, "charge", -1.0)?;
        let m = req_f32(kv, "mass", 1.0)?;
        let n0 = req_f32(kv, "density", 1.0)?;
        let ppc = get_usize(kv, "ppc", 32)?;
        let vth = req_f32(kv, "vth", 0.05)?;
        let mut sp = Species::new(name, q, m).with_sort_policy(sort);
        match kv.get("loader").map(String::as_str).unwrap_or("thermal") {
            "thermal" => {
                let drift = req_f32(kv, "drift", 0.0)?;
                load_uniform(
                    &mut sp,
                    &sim.grid,
                    &mut rng,
                    n0,
                    ppc,
                    Momentum::drifting_x(vth, drift),
                );
            }
            "two_stream" => {
                let drift = req_f32(kv, "drift", 0.1)?;
                load_two_stream(&mut sp, &sim.grid, &mut rng, n0, ppc, drift, vth);
            }
            "juttner" => {
                let theta = req_f32(kv, "theta", 0.1)? as f64;
                load_juttner(&mut sp, &sim.grid, &mut rng, n0, ppc, theta, 1.0);
            }
            other => return Err(err(format!("unknown loader: {other}"))),
        }
        sim.add_species(sp);
    }
    Ok(sim)
}

fn build_lpi(deck: &Deck) -> Result<LpiRun, DeckError> {
    let kv = deck
        .section("laser")
        .ok_or_else(|| err("missing [laser] section"))?;
    let defaults = LpiParams::default();
    let params = LpiParams {
        n_over_ncr: req_f32(kv, "n_over_ncr", defaults.n_over_ncr as f32)? as f64,
        vth: req_f32(kv, "vth", defaults.vth as f32)? as f64,
        a0: req_f32(kv, "a0", defaults.a0 as f32)? as f64,
        dx: req_f32(kv, "dx", defaults.dx)?,
        vacuum: req_f32(kv, "vacuum", defaults.vacuum)?,
        ramp: req_f32(kv, "ramp", defaults.ramp)?,
        flat: req_f32(kv, "flat", defaults.flat)?,
        ppc: get_usize(kv, "ppc", defaults.ppc)?,
        sponge_cells: get_usize(kv, "sponge_cells", defaults.sponge_cells)?,
        seed: deck.seed(),
        pipelines: get_usize(&deck.globals, "pipelines", defaults.pipelines)?,
        ramp_periods: req_f32(kv, "ramp_periods", defaults.ramp_periods)?,
        seed_frac: req_f32(kv, "seed_frac", defaults.seed_frac as f32)? as f64,
        ion_mass: get_f32(kv, "ion_mass")?,
        ti_over_te: req_f32(kv, "ti_over_te", defaults.ti_over_te)?,
        layout: parse_layout(deck)?,
        kernel: parse_kernel(deck)?,
        sort: parse_sort_policy(deck)?,
        diag: parse_diag(deck)?,
    };
    Ok(LpiRun::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_STREAM_DECK: &str = r#"
# classic two-stream setup
kind = plasma
steps = 42
seed = 9

[grid]
cells = 16 2 2
dx = 0.2
boundary = periodic

[species.electron]
charge = -1
mass = 1
ppc = 16
loader = two_stream
drift = 0.1
vth = 0.005
"#;

    #[test]
    fn parses_sections_and_globals() {
        let deck = Deck::parse(TWO_STREAM_DECK).unwrap();
        assert_eq!(deck.steps(), 42);
        assert_eq!(deck.seed(), 9);
        assert_eq!(deck.globals.get("kind").unwrap(), "plasma");
        assert!(deck.section("grid").is_some());
        let sp = deck.sections_with_prefix("species");
        assert_eq!(sp.len(), 1);
        assert_eq!(sp[0].0, "electron");
        assert_eq!(sp[0].1.get("loader").unwrap(), "two_stream");
    }

    #[test]
    fn builds_a_runnable_plasma() {
        let deck = Deck::parse(TWO_STREAM_DECK).unwrap();
        let BuiltRun::Plasma(mut sim) = build(&deck).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.grid.nx, 16);
        assert_eq!(sim.species.len(), 1);
        assert_eq!(sim.n_particles(), 16 * 2 * 2 * 16);
        sim.step();
        assert_eq!(sim.step_count, 1);
    }

    #[test]
    fn builds_an_lpi_run() {
        let text = r#"
kind = lpi
steps = 10

[laser]
a0 = 0.05
n_over_ncr = 0.1
vth = 0.06
flat = 4
ppc = 4
seed_frac = 0.1
"#;
        let deck = Deck::parse(text).unwrap();
        let BuiltRun::Lpi(run) = build(&deck).unwrap() else {
            panic!("wrong kind")
        };
        assert!((run.params.a0 - 0.05).abs() < 1e-9);
        assert!(run.seed_antenna.is_some());
    }

    #[test]
    fn builds_a_sweep() {
        let text = r#"
kind = lpi
steps = 40
seed = 3

[laser]
a0 = 0.05
n_over_ncr = 0.1
vth = 0.06
flat = 4
ppc = 4

[sweep]
a0 = 0.01, 0.02, 0.05
vth = 0.04, 0.06
checkpoint_interval = 10
max_attempts = 2
lease_ms = 500
jitter_seed = 7
"#;
        let deck = Deck::parse(text).unwrap();
        let BuiltRun::Sweep(setup) = build(&deck).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.grid.a0, vec![0.01, 0.02, 0.05]);
        // Degenerate axis inherited from the base deck (which parses
        // the key as f32, hence the widened comparison).
        assert_eq!(setup.grid.n_over_ncr.len(), 1);
        assert!((setup.grid.n_over_ncr[0] - 0.1).abs() < 1e-6);
        assert_eq!(setup.grid.vth, vec![0.04, 0.06]);
        assert_eq!(setup.grid.len(), 6);
        assert_eq!(setup.steps, 40);
        assert_eq!(setup.retry.max_attempts, 2);
        assert_eq!(setup.retry.jitter_seed, 7);
        let cfg = setup.config(Path::new("/tmp/out"));
        assert_eq!(cfg.checkpoint_interval, 10);
        assert_eq!(cfg.lease_ms, 500);
        assert_eq!(cfg.sweep_dir, Path::new("/tmp/out").join("sweep"));
    }

    #[test]
    fn sweep_rejects_malformed_axes() {
        let base = "kind = lpi\nsteps = 10\n[laser]\na0 = 0.05\n";
        let bad = format!("{base}[sweep]\na0 = 0.01, zap\n");
        assert!(build(&Deck::parse(&bad).unwrap()).is_err());
        let empty = format!("{base}[sweep]\na0 = ,\n");
        assert!(build(&Deck::parse(&empty).unwrap()).is_err());
    }

    #[test]
    fn error_reporting() {
        assert!(Deck::parse("[unterminated").is_err());
        assert!(Deck::parse("no_equals_here").is_err());
        let deck = Deck::parse("kind = plasma").unwrap();
        match build(&deck) {
            Err(e) => assert!(e.to_string().contains("[grid]")),
            Ok(_) => panic!("missing [grid] accepted"),
        }
        let deck = Deck::parse("kind = warp_drive").unwrap();
        assert!(build(&deck).is_err());
        let bad_loader = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.e]\nloader = magic";
        assert!(build(&Deck::parse(bad_loader).unwrap()).is_err());
    }

    const CAMPAIGN_DECK: &str = r#"
kind = plasma
steps = 12
seed = 5

[grid]
cells = 8 4 4
dx = 0.25

[species.electron]
charge = -1
mass = 1
ppc = 8
vth = 0.08

[campaign]
ranks = 4
checkpoint_interval = 4
max_recoveries = 2
health_interval = 2
op_timeout_ms = 500
kill_rank = 2
kill_step = 6
"#;

    #[test]
    fn builds_a_campaign_with_fault_plan() {
        let deck = Deck::parse(CAMPAIGN_DECK).unwrap();
        let BuiltRun::Campaign(setup) = build(&deck).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.ranks, 4);
        assert_eq!(setup.steps, 12);
        assert_eq!(setup.checkpoint, CheckpointPolicy::Fixed(4));
        assert_eq!(setup.recovery, RecoveryMode::Rollback);
        assert!(setup.compress);
        assert_eq!(setup.checkpoint_write_bps, None);
        assert_eq!(setup.max_recoveries, 2);
        assert_eq!(setup.health_interval, 2);
        assert_eq!(setup.op_timeout_ms, Some(500));
        let plan = setup.fault_plan.as_ref().expect("kill knobs make a plan");
        assert_eq!(plan.rules.len(), 1);

        // Any rank's simulation is reconstructible and non-trivial.
        let sim = setup.build_rank(1);
        assert_eq!(sim.species.len(), 1);
        assert!(!sim.species[0].is_empty());

        // Config lands in the fallback directory when dir is unset.
        let cfg = setup.config(std::path::Path::new("out"));
        assert_eq!(
            cfg.checkpoint_dir,
            std::path::Path::new("out").join("checkpoints")
        );
        assert_eq!(cfg.op_timeout, Some(std::time::Duration::from_millis(500)));
    }

    #[test]
    fn campaign_auto_interval_and_recovery_knobs() {
        let auto = CAMPAIGN_DECK
            .replace("checkpoint_interval = 4", "checkpoint_interval = auto")
            .replace(
                "max_recoveries = 2",
                "max_recoveries = 2\nmtbi_seconds = 1800\nauto_min_interval = 2\n\
                 auto_max_interval = 50\nrecovery = hot_spare\ncompress = false\n\
                 checkpoint_write_mbps = 8",
            );
        let BuiltRun::Campaign(setup) = build(&Deck::parse(&auto).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.recovery, RecoveryMode::HotSpare);
        assert!(!setup.compress);
        assert_eq!(setup.checkpoint_write_bps, Some(8_000_000));
        let CheckpointPolicy::Auto {
            mtbi,
            min_interval,
            max_interval,
        } = setup.checkpoint
        else {
            panic!("expected auto policy, got {:?}", setup.checkpoint)
        };
        assert_eq!(mtbi, std::time::Duration::from_secs(1800));
        assert_eq!((min_interval, max_interval), (2, 50));
        // The deck's auto mode resolves exactly to the Young/Daly model
        // prediction (clamped into the configured window).
        for (delta, step) in [(0.004, 0.02), (0.5, 0.01), (1e-6, 1.0)] {
            let expect = roadrunner_model::young_daly_interval_steps(delta, 1800.0, step)
                .clamp(min_interval, max_interval);
            assert_eq!(setup.checkpoint.resolve(delta, step), expect);
        }
        // Quoted form parses the same way.
        let quoted =
            CAMPAIGN_DECK.replace("checkpoint_interval = 4", "checkpoint_interval = \"auto\"");
        let BuiltRun::Campaign(q) = build(&Deck::parse(&quoted).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert!(matches!(q.checkpoint, CheckpointPolicy::Auto { .. }));

        // Bad knobs are rejected loudly.
        for (from, to) in [
            (
                "max_recoveries = 2",
                "max_recoveries = 2\nrecovery = quantum",
            ),
            ("max_recoveries = 2", "max_recoveries = 2\ncompress = maybe"),
            (
                "max_recoveries = 2",
                "max_recoveries = 2\ncheckpoint_write_mbps = -3",
            ),
            (
                "checkpoint_interval = 4",
                "checkpoint_interval = auto\nmtbi_seconds = 0",
            ),
            (
                "checkpoint_interval = 4",
                "checkpoint_interval = auto\nauto_min_interval = 9\nauto_max_interval = 3",
            ),
        ] {
            let bad = CAMPAIGN_DECK.replace(from, to);
            assert!(
                build(&Deck::parse(&bad).unwrap()).is_err(),
                "accepted: {to}"
            );
        }
    }

    #[test]
    fn transport_global_parses_and_rejects_junk() {
        // Default is local.
        let BuiltRun::Campaign(setup) = build(&Deck::parse(CAMPAIGN_DECK).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.transport, TransportKind::Local);

        let socket = format!("transport = socket\n{CAMPAIGN_DECK}");
        let BuiltRun::Campaign(setup) = build(&Deck::parse(&socket).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.transport, TransportKind::Socket);

        let junk = format!("transport = carrier_pigeon\n{CAMPAIGN_DECK}");
        assert!(build(&Deck::parse(&junk).unwrap()).is_err());

        // The sweep setup honours the same global.
        let sweep = "kind = lpi\ntransport = socket\n[laser]\na0 = 0.01\n[sweep]\na0 = 0.01, 0.02";
        let BuiltRun::Sweep(setup) = build(&Deck::parse(sweep).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.transport, TransportKind::Socket);
    }

    #[test]
    fn campaign_laser_and_sponge_sections_parse() {
        let text = format!(
            "{CAMPAIGN_DECK}\n[laser]\nplane = 3\na0 = 0.1\nomega = 1.5\nramp_steps = 4\n\
             polarization = z\n\n[sponge]\nlo_cells = 1\nhi_cells = 2\nstrength = 0.2\n"
        );
        let BuiltRun::Campaign(setup) = build(&Deck::parse(&text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        let l = setup.laser.expect("laser section parsed");
        assert_eq!((l.plane, l.ramp_steps), (3, 4));
        assert!((l.a0 - 0.1).abs() < 1e-7 && (l.omega - 1.5).abs() < 1e-7);
        let s = setup.sponge.expect("sponge section parsed");
        assert_eq!((s.lo_cells, s.hi_cells), (1, 2));

        // The sponge lands on every built rank; the antenna only on ranks
        // whose x-slab contains global plane 3 — each drives its own local
        // y–z patch of the plane, so one rank per x-column fires.
        let expected = setup.ranks / setup.spec.topo.dims[0];
        let mut driven = 0;
        for rank in 0..setup.ranks {
            assert!(setup.build_rank(rank).sponge.is_some());
            let drive = setup.drive_for(rank);
            let mut sim = setup.build_rank(rank);
            let before = sim.fields.jz.clone();
            let g = sim.grid.clone();
            // Step 5 is past the 4-step ramp, so the owner's amplitude is
            // guaranteed non-zero.
            drive(&mut sim.fields, &g, 5);
            if sim.fields.jz != before {
                driven += 1;
            }
        }
        assert_eq!(driven, expected, "one driving rank per x-column");

        // Out-of-range plane is a parse error.
        let bad = format!("{CAMPAIGN_DECK}\n[laser]\nplane = 9\n");
        assert!(build(&Deck::parse(&bad).unwrap()).is_err());
        // So is an out-of-range sponge strength.
        let bad = format!("{CAMPAIGN_DECK}\n[sponge]\nstrength = 1.5\n");
        assert!(build(&Deck::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn campaign_validation_errors() {
        // Cells not divisible by the rank topology.
        let bad_grid = CAMPAIGN_DECK.replace("cells = 8 4 4", "cells = 9 4 4");
        assert!(build(&Deck::parse(&bad_grid).unwrap()).is_err());
        // kill_rank out of range.
        let bad_kill = CAMPAIGN_DECK.replace("kill_rank = 2", "kill_rank = 7");
        assert!(build(&Deck::parse(&bad_kill).unwrap()).is_err());
        // kill_rank without kill_step.
        let half_kill = CAMPAIGN_DECK.replace("kill_step = 6", "");
        assert!(build(&Deck::parse(&half_kill).unwrap()).is_err());
        // Campaign decks reject exotic loaders.
        let bad_loader = CAMPAIGN_DECK.replace("vth = 0.08", "loader = juttner");
        assert!(build(&Deck::parse(&bad_loader).unwrap()).is_err());
        // No faults requested: no plan.
        let clean = CAMPAIGN_DECK
            .replace("kill_rank = 2", "")
            .replace("kill_step = 6", "");
        let BuiltRun::Campaign(setup) = build(&Deck::parse(&clean).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert!(setup.fault_plan.is_none());
    }

    #[test]
    fn sentinel_and_fault_sections_parse() {
        let text = format!(
            "{CAMPAIGN_DECK}\n[sentinel]\nhealth_interval = 5\nmax_div_e_rms = 0.02\n\
             marder_passes = 8\n\n[fault]\ncorrupt_step = 7\ncorrupt_count = 3\n\
             corrupt_mode = huge\ncorrupt_rank = 1\n"
        );
        let BuiltRun::Campaign(setup) = build(&Deck::parse(&text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        let s = setup.sentinel.expect("sentinel section parsed").sentinel;
        assert_eq!(s.health_interval, 5);
        assert!((s.max_div_e_rms - 0.02).abs() < 1e-7);
        assert_eq!(s.marder_passes, 8);
        // Unset keys keep the armed defaults.
        assert_eq!(
            s.max_marder_bursts,
            SentinelConfig::enabled().max_marder_bursts
        );
        let plan = setup.corruption.as_ref().expect("fault section parsed");
        assert_eq!(plan.events.len(), 1);
        let ev = &plan.events[0];
        assert_eq!((ev.step, ev.count, ev.rank), (7, 3, Some(1)));
        assert_eq!(ev.mode, CorruptionMode::Huge);
        // The sentinel/corruption land in the campaign config.
        let cfg = setup.config(std::path::Path::new("out"));
        assert_eq!(cfg.sentinel.health_interval, 5);
        assert!(cfg.corruption.is_some());
        // Bad knobs are rejected.
        let bad = format!("{CAMPAIGN_DECK}\n[fault]\ncorrupt_step = 2\ncorrupt_mode = gamma\n");
        assert!(build(&Deck::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn lpi_campaign_deck_builds() {
        let text = r#"
kind = lpi
steps = 80
seed = 3

[laser]
a0 = 0.01
flat = 4
ppc = 4

[campaign]
checkpoint_interval = 20
max_recoveries = 2
kill_step = 35

[sentinel]
health_interval = 10
max_energy_growth = 100

[fault]
corrupt_step = 25
corrupt_count = 4
"#;
        let BuiltRun::LpiCampaign(setup) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(setup.steps, 80);
        assert_eq!(setup.checkpoint_interval, 20);
        assert_eq!(setup.max_recoveries, 2);
        assert!(setup.fault_plan.is_some());
        assert!(setup.corruption.is_some());
        let cfg = setup.config(std::path::Path::new("out"));
        assert_eq!(cfg.sentinel.health_interval, 10);
        assert_eq!(
            cfg.checkpoint_dir,
            std::path::Path::new("out").join("checkpoints")
        );
        // Without [campaign] the same deck is a plain LPI run.
        let plain = text.replace("[campaign]", "[not_campaign]");
        assert!(matches!(
            build(&Deck::parse(&plain).unwrap()).unwrap(),
            BuiltRun::Lpi(_)
        ));
    }

    #[test]
    fn shipped_srs_deck_is_a_campaign() {
        let text = std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("decks/srs_backscatter.deck"),
        )
        .unwrap();
        let BuiltRun::LpiCampaign(setup) = build(&Deck::parse(&text).unwrap()).unwrap() else {
            panic!("srs_backscatter.deck must build an LPI campaign")
        };
        assert_eq!(setup.steps, 3000);
        assert!(setup.fault_plan.is_some(), "kill_step expected");
        assert!(setup.corruption.is_some(), "corrupt_step expected");
        let s = setup.sentinel.expect("[sentinel] expected");
        assert_eq!(s.sentinel.health_interval, 50);
    }

    #[test]
    fn layout_knob_selects_aosoa_and_rejects_junk() {
        let text = "kind = plasma\nlayout = aosoa\n[grid]\ncells = 4 2 2\n[species.e]\nppc = 8";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.layout(), Layout::Aosoa);
        assert!(sim.species.iter().all(|sp| sp.layout() == Layout::Aosoa));

        // Default stays AoS; campaign and LPI decks honour the knob too.
        let text = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.layout(), Layout::Aos);
        let text = "kind = lpi\nlayout = aosoa\n[laser]\na0 = 0.01";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(run.sim.layout(), Layout::Aosoa);

        let bad = "kind = plasma\nlayout = soa\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        assert!(build(&Deck::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn kernel_knob_selects_push_body_and_rejects_junk() {
        let text = "kind = plasma\nkernel = scalar\n[grid]\ncells = 4 2 2\n[species.e]\nppc = 8";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.kernel(), PushKernel::Scalar);

        // Default is the production lane kernel; LPI decks honour it too.
        let text = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.kernel(), PushKernel::Lane);
        let text = "kind = lpi\nkernel = scalar\n[laser]\na0 = 0.01";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(run.sim.kernel(), PushKernel::Scalar);
        assert_eq!(run.params.kernel, PushKernel::Scalar);

        let bad = "kind = plasma\nkernel = avx\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        assert!(build(&Deck::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn sort_interval_knob_selects_cadence_and_rejects_junk() {
        let text =
            "kind = plasma\nsort_interval = auto\n[grid]\ncells = 4 2 2\n[species.e]\nppc = 8";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert!(sim
            .species
            .iter()
            .all(|sp| sp.sort_policy == SortPolicy::Auto));

        // Quoted form and explicit step counts both parse; the default
        // stays the historical fixed 25.
        let text =
            "kind = plasma\nsort_interval = \"auto\"\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.species[0].sort_policy, SortPolicy::Auto);
        let text = "kind = plasma\nsort_interval = 7\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.species[0].sort_policy, SortPolicy::Fixed(7));
        let text = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.species[0].sort_policy, SortPolicy::Fixed(25));

        // LPI decks honour the knob on every species.
        let text = "kind = lpi\nsort_interval = auto\n[laser]\na0 = 0.01\nion_mass = 100";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(run.params.sort, SortPolicy::Auto);
        assert!(run
            .sim
            .species
            .iter()
            .all(|sp| sp.sort_policy == SortPolicy::Auto));

        let bad = "kind = plasma\nsort_interval = -3\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        assert!(build(&Deck::parse(bad).unwrap()).is_err());
        let bad =
            "kind = plasma\nsort_interval = fast\n[grid]\ncells = 2 2 2\n[species.e]\nppc = 1";
        assert!(build(&Deck::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn diag_knob_and_section_parse_and_reject_junk() {
        use vpic_diag::{Backpressure, DiagMode};

        // Bare global shorthand selects just the mode.
        let text = "kind = lpi\ndiag = async\n[laser]\na0 = 0.01";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(run.params.diag.mode, DiagMode::Async);

        // Default is off; the [diag] section sets mode and tuning knobs,
        // and clamps the degenerate zero values to 1.
        let text = "kind = lpi\n[laser]\na0 = 0.01";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(run.params.diag.mode, DiagMode::Off);
        let text = "kind = lpi\n[laser]\na0 = 0.01\n[diag]\nmode = sync\ncadence = 0\n\
                    queue_depth = 8\ndecimation = 32\nseries_cap = 4096\nbackpressure = drop";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        let d = run.params.diag;
        assert_eq!(d.mode, DiagMode::Sync);
        assert_eq!(d.cadence, 1); // clamped
        assert_eq!(d.queue_depth, 8);
        assert_eq!(d.decimation, 32);
        assert_eq!(d.series_cap, 4096);
        assert_eq!(d.backpressure, Backpressure::Drop);

        // The section's mode wins over the global shorthand.
        let text = "kind = lpi\ndiag = sync\n[laser]\na0 = 0.01\n[diag]\nmode = async";
        let BuiltRun::Lpi(run) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(run.params.diag.mode, DiagMode::Async);

        for bad in [
            "kind = lpi\ndiag = eager\n[laser]\na0 = 0.01",
            "kind = lpi\n[laser]\na0 = 0.01\n[diag]\nmode = turbo",
            "kind = lpi\n[laser]\na0 = 0.01\n[diag]\nbackpressure = spill",
            "kind = lpi\n[laser]\na0 = 0.01\n[diag]\ncadence = many",
        ] {
            assert!(build(&Deck::parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    /// Deck → dump → restore into the *other* layout: the dump bytes are
    /// canonical AoS, so an AoSoA-built run restores into an AoS sim (and
    /// vice versa) and both retrace the same trajectory bit for bit.
    #[test]
    fn deck_dump_restores_into_the_other_layout_bit_identically() {
        let text =
            "kind = plasma\nlayout = aosoa\nseed = 5\n[grid]\ncells = 6 4 2\n[species.e]\nppc = 8";
        let BuiltRun::Plasma(mut sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!("wrong kind")
        };
        for _ in 0..3 {
            sim.step();
        }
        let mut dump = Vec::new();
        vpic_core::checkpoint::save(&sim, &mut dump).unwrap();
        let mut other =
            vpic_core::checkpoint::load_with_layout(&mut dump.as_slice(), 1, Layout::Aos).unwrap();
        assert_eq!(other.layout(), Layout::Aos);
        for _ in 0..5 {
            sim.step();
            other.step();
        }
        assert_eq!(sim.species[0].store(), other.species[0].store());
        assert_eq!(sim.fields.ex, other.fields.ex);
        assert_eq!(sim.fields.cbz, other.fields.cbz);
    }

    #[test]
    fn juttner_loader_from_deck() {
        let text = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.hot]\nloader = juttner\ntheta = 0.5\nppc = 50";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!()
        };
        // Relativistic: mean γ well above 1.
        let mean_gamma: f64 =
            sim.species[0].iter().map(|p| p.gamma() as f64).sum::<f64>() / sim.n_particles() as f64;
        assert!(mean_gamma > 1.4, "γ = {mean_gamma}");
    }
}
