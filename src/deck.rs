//! Input decks: plain-text run descriptions in the spirit of VPIC's input
//! decks (which are C++ there; here a simple INI-like format), so a
//! simulation can be configured, launched and post-processed without
//! writing Rust. Used by the `vpic-run` binary.
//!
//! ```text
//! # two_stream.deck
//! kind = plasma
//! steps = 500
//!
//! [grid]
//! cells = 64 2 2
//! dx = 0.2
//! courant = 0.9
//! boundary = periodic
//!
//! [species.electron]
//! charge = -1
//! mass = 1
//! density = 1
//! ppc = 64
//! loader = two_stream      # or: thermal, juttner
//! drift = 0.1
//! vth = 0.005
//!
//! [output]
//! energy_interval = 10
//! ```
//!
//! `kind = lpi` decks instead carry a `[laser]` section (`a0`,
//! `n_over_ncr`, `vth`, `flat`, `ppc`, `seed_frac`, …) and build a seeded
//! SRS run.

use std::collections::BTreeMap;
use vpic_core::{
    load_juttner, load_two_stream, load_uniform, Grid, Momentum, ParticleBc, Rng, Simulation,
    Species,
};
use vpic_lpi::{LpiParams, LpiRun};

/// A parsed deck: sections of key → value.
#[derive(Clone, Debug, Default)]
pub struct Deck {
    /// Top-level (section-less) keys.
    pub globals: BTreeMap<String, String>,
    /// `[section]` keys, in file order.
    pub sections: Vec<(String, BTreeMap<String, String>)>,
}

/// Deck parsing/validation error.
#[derive(Debug)]
pub struct DeckError(pub String);

impl std::fmt::Display for DeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deck error: {}", self.0)
    }
}

impl std::error::Error for DeckError {}

fn err(msg: impl Into<String>) -> DeckError {
    DeckError(msg.into())
}

impl Deck {
    /// Parse deck text. `#` starts a comment; blank lines are ignored.
    pub fn parse(text: &str) -> Result<Deck, DeckError> {
        let mut deck = Deck::default();
        let mut current: Option<usize> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(format!("line {}: unterminated section", lineno + 1)))?
                    .trim()
                    .to_string();
                deck.sections.push((name, BTreeMap::new()));
                current = Some(deck.sections.len() - 1);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("line {}: expected key = value", lineno + 1)))?;
            let (key, value) = (key.trim().to_string(), value.trim().to_string());
            match current {
                Some(s) => {
                    deck.sections[s].1.insert(key, value);
                }
                None => {
                    deck.globals.insert(key, value);
                }
            }
        }
        Ok(deck)
    }

    /// First section with this exact name.
    pub fn section(&self, name: &str) -> Option<&BTreeMap<String, String>> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, kv)| kv)
    }

    /// All sections whose name starts with `prefix.` — returns
    /// `(suffix, keys)` pairs (e.g. `species.electron` → `electron`).
    pub fn sections_with_prefix(&self, prefix: &str) -> Vec<(&str, &BTreeMap<String, String>)> {
        let p = format!("{prefix}.");
        self.sections
            .iter()
            .filter_map(|(n, kv)| n.strip_prefix(&p).map(|suffix| (suffix, kv)))
            .collect()
    }

    /// Global `steps` (default 100) and `seed` (default 1).
    pub fn steps(&self) -> u64 {
        self.globals.get("steps").and_then(|v| v.parse().ok()).unwrap_or(100)
    }

    /// Run seed.
    pub fn seed(&self) -> u64 {
        self.globals.get("seed").and_then(|v| v.parse().ok()).unwrap_or(1)
    }
}

fn get_f32(kv: &BTreeMap<String, String>, key: &str) -> Result<Option<f32>, DeckError> {
    match kv.get(key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| err(format!("bad float for {key}: {v}"))),
    }
}

fn req_f32(kv: &BTreeMap<String, String>, key: &str, default: f32) -> Result<f32, DeckError> {
    Ok(get_f32(kv, key)?.unwrap_or(default))
}

fn get_usize(kv: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, DeckError> {
    match kv.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| err(format!("bad integer for {key}: {v}"))),
    }
}

/// What a deck builds.
pub enum BuiltRun {
    /// A periodic/walled plasma box.
    Plasma(Simulation),
    /// A laser–plasma interaction run.
    Lpi(Box<LpiRun>),
}

/// Build the run a deck describes.
pub fn build(deck: &Deck) -> Result<BuiltRun, DeckError> {
    match deck.globals.get("kind").map(String::as_str) {
        Some("plasma") | None => build_plasma(deck).map(BuiltRun::Plasma),
        Some("lpi") => build_lpi(deck).map(|r| BuiltRun::Lpi(Box::new(r))),
        Some(other) => Err(err(format!("unknown kind: {other}"))),
    }
}

fn build_plasma(deck: &Deck) -> Result<Simulation, DeckError> {
    let gkv = deck.section("grid").ok_or_else(|| err("missing [grid] section"))?;
    let cells_str = gkv.get("cells").ok_or_else(|| err("grid.cells required"))?;
    let cells: Vec<usize> = cells_str
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| err(format!("bad cells: {cells_str}"))))
        .collect::<Result<_, _>>()?;
    if cells.len() != 3 {
        return Err(err("grid.cells wants three integers"));
    }
    let dx = req_f32(gkv, "dx", 0.25)?;
    let courant = req_f32(gkv, "courant", 0.9)?;
    let dt = Grid::courant_dt(1.0, (dx, dx, dx), courant);
    let bc = match gkv.get("boundary").map(String::as_str).unwrap_or("periodic") {
        "periodic" => [ParticleBc::Periodic; 6],
        "reflecting" => [
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
            ParticleBc::Reflect,
            ParticleBc::Periodic,
            ParticleBc::Periodic,
        ],
        other => return Err(err(format!("unknown boundary: {other}"))),
    };
    let grid = Grid::new((cells[0], cells[1], cells[2]), (dx, dx, dx), dt, bc);
    let pipelines = get_usize(&deck.globals, "pipelines", 1)?;
    let mut sim = Simulation::new(grid, pipelines);

    let species = deck.sections_with_prefix("species");
    if species.is_empty() {
        return Err(err("at least one [species.<name>] section required"));
    }
    let mut rng = Rng::seeded(deck.seed());
    for (name, kv) in species {
        let q = req_f32(kv, "charge", -1.0)?;
        let m = req_f32(kv, "mass", 1.0)?;
        let n0 = req_f32(kv, "density", 1.0)?;
        let ppc = get_usize(kv, "ppc", 32)?;
        let vth = req_f32(kv, "vth", 0.05)?;
        let mut sp = Species::new(name, q, m);
        match kv.get("loader").map(String::as_str).unwrap_or("thermal") {
            "thermal" => {
                let drift = req_f32(kv, "drift", 0.0)?;
                load_uniform(&mut sp, &sim.grid, &mut rng, n0, ppc, Momentum::drifting_x(vth, drift));
            }
            "two_stream" => {
                let drift = req_f32(kv, "drift", 0.1)?;
                load_two_stream(&mut sp, &sim.grid, &mut rng, n0, ppc, drift, vth);
            }
            "juttner" => {
                let theta = req_f32(kv, "theta", 0.1)? as f64;
                load_juttner(&mut sp, &sim.grid, &mut rng, n0, ppc, theta, 1.0);
            }
            other => return Err(err(format!("unknown loader: {other}"))),
        }
        sim.add_species(sp);
    }
    Ok(sim)
}

fn build_lpi(deck: &Deck) -> Result<LpiRun, DeckError> {
    let kv = deck.section("laser").ok_or_else(|| err("missing [laser] section"))?;
    let defaults = LpiParams::default();
    let params = LpiParams {
        n_over_ncr: req_f32(kv, "n_over_ncr", defaults.n_over_ncr as f32)? as f64,
        vth: req_f32(kv, "vth", defaults.vth as f32)? as f64,
        a0: req_f32(kv, "a0", defaults.a0 as f32)? as f64,
        dx: req_f32(kv, "dx", defaults.dx)?,
        vacuum: req_f32(kv, "vacuum", defaults.vacuum)?,
        ramp: req_f32(kv, "ramp", defaults.ramp)?,
        flat: req_f32(kv, "flat", defaults.flat)?,
        ppc: get_usize(kv, "ppc", defaults.ppc)?,
        sponge_cells: get_usize(kv, "sponge_cells", defaults.sponge_cells)?,
        seed: deck.seed(),
        pipelines: get_usize(&deck.globals, "pipelines", defaults.pipelines)?,
        ramp_periods: req_f32(kv, "ramp_periods", defaults.ramp_periods)?,
        seed_frac: req_f32(kv, "seed_frac", defaults.seed_frac as f32)? as f64,
        ion_mass: get_f32(kv, "ion_mass")?,
        ti_over_te: req_f32(kv, "ti_over_te", defaults.ti_over_te)?,
    };
    Ok(LpiRun::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_STREAM_DECK: &str = r#"
# classic two-stream setup
kind = plasma
steps = 42
seed = 9

[grid]
cells = 16 2 2
dx = 0.2
boundary = periodic

[species.electron]
charge = -1
mass = 1
ppc = 16
loader = two_stream
drift = 0.1
vth = 0.005
"#;

    #[test]
    fn parses_sections_and_globals() {
        let deck = Deck::parse(TWO_STREAM_DECK).unwrap();
        assert_eq!(deck.steps(), 42);
        assert_eq!(deck.seed(), 9);
        assert_eq!(deck.globals.get("kind").unwrap(), "plasma");
        assert!(deck.section("grid").is_some());
        let sp = deck.sections_with_prefix("species");
        assert_eq!(sp.len(), 1);
        assert_eq!(sp[0].0, "electron");
        assert_eq!(sp[0].1.get("loader").unwrap(), "two_stream");
    }

    #[test]
    fn builds_a_runnable_plasma() {
        let deck = Deck::parse(TWO_STREAM_DECK).unwrap();
        let BuiltRun::Plasma(mut sim) = build(&deck).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(sim.grid.nx, 16);
        assert_eq!(sim.species.len(), 1);
        assert_eq!(sim.n_particles(), 16 * 2 * 2 * 16);
        sim.step();
        assert_eq!(sim.step_count, 1);
    }

    #[test]
    fn builds_an_lpi_run() {
        let text = r#"
kind = lpi
steps = 10

[laser]
a0 = 0.05
n_over_ncr = 0.1
vth = 0.06
flat = 4
ppc = 4
seed_frac = 0.1
"#;
        let deck = Deck::parse(text).unwrap();
        let BuiltRun::Lpi(run) = build(&deck).unwrap() else { panic!("wrong kind") };
        assert!((run.params.a0 - 0.05).abs() < 1e-9);
        assert!(run.seed_antenna.is_some());
    }

    #[test]
    fn error_reporting() {
        assert!(Deck::parse("[unterminated").is_err());
        assert!(Deck::parse("no_equals_here").is_err());
        let deck = Deck::parse("kind = plasma").unwrap();
        match build(&deck) {
            Err(e) => assert!(e.to_string().contains("[grid]")),
            Ok(_) => panic!("missing [grid] accepted"),
        }
        let deck = Deck::parse("kind = warp_drive").unwrap();
        assert!(matches!(build(&deck), Err(_)));
        let bad_loader = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.e]\nloader = magic";
        assert!(matches!(build(&Deck::parse(bad_loader).unwrap()), Err(_)));
    }

    #[test]
    fn juttner_loader_from_deck() {
        let text = "kind = plasma\n[grid]\ncells = 2 2 2\n[species.hot]\nloader = juttner\ntheta = 0.5\nppc = 50";
        let BuiltRun::Plasma(sim) = build(&Deck::parse(text).unwrap()).unwrap() else {
            panic!()
        };
        // Relativistic: mean γ well above 1.
        let mean_gamma: f64 = sim.species[0]
            .particles
            .iter()
            .map(|p| p.gamma() as f64)
            .sum::<f64>()
            / sim.n_particles() as f64;
        assert!(mean_gamma > 1.4, "γ = {mean_gamma}");
    }
}
