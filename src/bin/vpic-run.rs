//! `vpic-run`: execute a simulation described by an input deck and write
//! diagnostics as TSV.
//!
//! ```sh
//! cargo run --release --bin vpic-run -- decks/two_stream.deck out/
//! ```
//!
//! For `kind = plasma` decks this writes `energies.tsv` and a final field
//! line-out `fields.tsv` into the output directory; for `kind = lpi` it
//! additionally reports the measured reflectivity and the backscatter
//! spectrum (`spectrum.tsv`). Decks with a `[campaign]` section run the
//! fault-tolerant multi-rank campaign runtime instead: checkpoints land in
//! `<output-dir>/checkpoints` (unless `campaign.dir` overrides it), the
//! per-rank recovery logs next to them, and a per-rank summary is written
//! to `campaign.tsv`. `kind = lpi` decks with a `[sweep]` section run the
//! crash-proof reflectivity-sweep service: per-job progress is narrated
//! as jobs lease/finish/retry, and the aggregated curve lands in
//! `<output-dir>/sweep/reflectivity_curve.json` (re-running the same
//! deck resumes a killed sweep from its write-ahead log).
//!
//! Campaign decks can run over real sockets instead of in-process
//! channels: set `transport = socket` in the deck (or pass
//! `--transport socket`) for a thread-per-rank world over Unix-domain
//! sockets, or launch one OS process per rank with
//! `vpic-run deck out --rank N --world M [--socket-dir D]` — each process
//! binds `D/rankN.sock` and the world assembles via the bootstrap
//! handshake. A process respawned after a crash passes `--rejoin` to
//! adopt the dead rank's seat and roll the world back to the newest
//! common checkpoint.

use nanompi::{SocketAddrSpec, SocketBoot, TransportKind};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vpic::core::crc32::fingerprint32;
use vpic::deck::{build, BuiltRun, Deck};
use vpic::diag::{write_field_line_x, write_series, EnergyLogger};
use vpic::parallel::campaign::{
    rejoin_campaign, run_campaign_with, CampaignEnd, CampaignOutcome, CheckpointPolicy,
    RecoveryMode,
};
use vpic::parallel::{dump_rank_bytes, spec_fingerprint};

const USAGE: &str = "usage: vpic-run <deck-file> [output-dir] \
     [--transport local|socket] [--rank N --world M] [--socket-dir D] [--rejoin]";

/// Command-line options beyond the deck/output positionals. `rank`/`world`
/// select single-process-per-rank socket mode; `transport` overrides the
/// deck's `transport` global.
#[derive(Default)]
struct Cli {
    transport: Option<TransportKind>,
    rank: Option<usize>,
    world: Option<usize>,
    socket_dir: Option<PathBuf>,
    rejoin: bool,
}

fn parse_args(args: &[String]) -> Result<(String, String, Cli), String> {
    let mut cli = Cli::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--transport" => {
                let v = value("--transport")?;
                cli.transport = Some(
                    TransportKind::parse(&v)
                        .ok_or_else(|| format!("--transport must be local or socket, got {v}"))?,
                );
            }
            "--rank" => {
                let v = value("--rank")?;
                cli.rank = Some(v.parse().map_err(|_| format!("bad --rank {v}"))?);
            }
            "--world" => {
                let v = value("--world")?;
                cli.world = Some(v.parse().map_err(|_| format!("bad --world {v}"))?);
            }
            "--socket-dir" => cli.socket_dir = Some(PathBuf::from(value("--socket-dir")?)),
            "--rejoin" => cli.rejoin = true,
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => positional.push(a.to_string()),
        }
    }
    if cli.rank.is_some() != cli.world.is_some() {
        return Err("--rank and --world go together".to_string());
    }
    if cli.rejoin && cli.rank.is_none() {
        return Err("--rejoin only makes sense with --rank/--world".to_string());
    }
    match positional.as_slice() {
        [d] => Ok((d.clone(), ".".to_string(), cli)),
        [d, o] => Ok((d.clone(), o.clone(), cli)),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (deck_path, out_dir, cli) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&deck_path, &out_dir, &cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vpic-run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(deck_path: &str, out_dir: &str, cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let text = fs::read_to_string(deck_path)?;
    let deck = Deck::parse(&text)?;
    fs::create_dir_all(out_dir)?;
    let steps = deck.steps();
    let energy_interval = deck
        .section("output")
        .and_then(|kv| kv.get("energy_interval"))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(10)
        .max(1);

    let built = build(&deck)?;
    if cli.rank.is_some() && !matches!(built, BuiltRun::Campaign(_)) {
        return Err("--rank/--world only apply to decks with a [campaign] section".into());
    }

    match built {
        BuiltRun::Plasma(mut sim) => {
            println!(
                "plasma run: {} cells, {} particles, {} steps, {} pipelines, {} rayon threads, {} layout, {} kernel",
                sim.grid.n_live(),
                sim.n_particles(),
                steps,
                sim.accumulators.n_pipelines(),
                vpic::core::worker_threads(),
                sim.layout(),
                sim.kernel()
            );
            let names: Vec<String> = sim.species.iter().map(|s| s.name.clone()).collect();
            let mut elog = EnergyLogger::new(
                fs::File::create(Path::new(out_dir).join("energies.tsv"))?,
                names,
            );
            for s in 0..steps {
                if s % energy_interval == 0 {
                    elog.log_sim(&sim)?;
                }
                sim.step();
            }
            elog.log_sim(&sim)?;
            let mut f = fs::File::create(Path::new(out_dir).join("fields.tsv"))?;
            write_field_line_x(&sim.fields, &sim.grid, &mut f)?;
            let e = sim.energies();
            println!(
                "done: total energy {:.6e}, lost particles {}",
                e.total(),
                sim.lost_particles
            );
            print_throughput(&sim.timings, sim.accumulators.n_pipelines());
            print_coherence(&sim.species);
        }
        BuiltRun::Lpi(mut run) => {
            println!(
                "LPI run: a0 = {}, n/ncr = {}, {} particles, {} steps, {} pipelines, {} rayon threads, {} layout, {} kernel, {} diag",
                run.params.a0,
                run.params.n_over_ncr,
                run.sim.n_particles(),
                steps,
                run.sim.accumulators.n_pipelines(),
                vpic::core::worker_threads(),
                run.sim.layout(),
                run.sim.kernel(),
                run.params.diag.mode.as_str()
            );
            // Streaming artifacts (progress.json) land next to the TSVs.
            run.diag_set_out_dir(PathBuf::from(out_dir));
            let names: Vec<String> = run.sim.species.iter().map(|s| s.name.clone()).collect();
            let mut elog = EnergyLogger::new(
                fs::File::create(Path::new(out_dir).join("energies.tsv"))?,
                names,
            );
            for s in 0..steps {
                if s % energy_interval == 0 {
                    elog.log_sim(&run.sim)?;
                }
                run.step();
            }
            elog.log_sim(&run.sim)?;
            let mut f = fs::File::create(Path::new(out_dir).join("fields.tsv"))?;
            write_field_line_x(&run.sim.fields, &run.sim.grid, &mut f)?;
            let spec = run.backscatter_spectrum();
            let xs: Vec<f64> = spec.iter().map(|(w, _)| *w).collect();
            let ys: Vec<f64> = spec.iter().map(|(_, p)| *p).collect();
            let mut f = fs::File::create(Path::new(out_dir).join("spectrum.tsv"))?;
            write_series("backscatter_power", &xs, &ys, &mut f)?;
            // Drain the diagnostics pipeline (a no-op when diag = off)
            // and fold its counters into the closing summary.
            let (_engine, dstats) = run.diag_finish();
            println!(
                "done: reflectivity {:.3e} over {} probe samples",
                run.reflectivity(),
                run.probe.samples()
            );
            print_diag_stats(run.params.diag.mode, &dstats);
            print_throughput(&run.sim.timings, run.sim.accumulators.n_pipelines());
            print_coherence(&run.sim.species);
        }
        BuiltRun::Campaign(setup) => run_campaign_deck(*setup, out_dir, cli)?,
        BuiltRun::LpiCampaign(setup) => run_lpi_campaign_deck(*setup, out_dir)?,
        BuiltRun::Sweep(setup) => run_sweep_deck(*setup, out_dir)?,
    }
    Ok(())
}

fn run_lpi_campaign_deck(
    setup: vpic::deck::LpiCampaignSetup,
    out_dir: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use vpic::lpi::{run_lpi_campaign, LpiCampaignEnd};

    let cfg = setup.config(Path::new(out_dir));
    println!(
        "LPI campaign: a0 = {}, n/ncr = {}, {} steps, checkpoint every {} steps into {}, \
         sentinel every {} steps",
        setup.params.a0,
        setup.params.n_over_ncr,
        cfg.steps,
        cfg.checkpoint_interval,
        cfg.checkpoint_dir.display(),
        cfg.sentinel.health_interval
    );
    if let Some(plan) = &cfg.fault_plan {
        println!(
            "fault injection: {} rule(s), seed {}",
            plan.rules.len(),
            plan.seed
        );
    }
    if let Some(plan) = &cfg.corruption {
        println!(
            "corruption injection: {} event(s), seed {}",
            plan.events.len(),
            plan.seed
        );
    }
    let out = run_lpi_campaign(setup.params, &cfg)?;
    print_diag_stats(setup.params.diag.mode, &out.diag);
    for h in &out.heals {
        println!(
            "heal at step {}: {} burst of {} pass(es), rms {:.3e} -> {:.3e}{}",
            h.step,
            h.kind.as_str(),
            h.passes,
            h.rms_before,
            h.rms_after,
            if h.healed { "" } else { " (not healed)" }
        );
    }
    for r in &out.recoveries {
        println!(
            "recovery at step {}: {} -> restored step {}",
            r.at_step, r.cause, r.restored_step
        );
    }
    match &out.end {
        LpiCampaignEnd::Completed => println!(
            "completed: {} steps, {} recovery(ies), reflectivity {:.3e}, \
             {} particles, state fingerprint {:08x}",
            out.steps_run,
            out.recoveries.len(),
            out.reflectivity,
            out.n_particles,
            out.state_fingerprint
        ),
        LpiCampaignEnd::Degraded {
            at_step,
            partial_dump,
            flight_recorder,
        } => println!(
            "degraded at step {at_step}: partial dump {}, flight recorder {}",
            partial_dump.display(),
            flight_recorder.display()
        ),
        LpiCampaignEnd::Halted { at_step } => println!(
            "halted by checkpoint hook at step {at_step}: resumable from {}",
            cfg.checkpoint_dir.display()
        ),
    }
    Ok(())
}

fn run_sweep_deck(
    setup: vpic::deck::SweepSetup,
    out_dir: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use vpic::lpi::sweep::{SweepEnd, SweepProgress, SweepRunner};

    let cfg = setup.config(Path::new(out_dir));
    let grid = setup.grid.clone();
    println!(
        "reflectivity sweep: {} point(s) ({} a0 x {} n/ncr x {} vth), {} steps each, \
         checkpoint/heartbeat every {} steps, <= {} attempt(s)/job, WAL in {}",
        grid.len(),
        grid.a0.len(),
        grid.n_over_ncr.len(),
        grid.vth.len(),
        cfg.steps,
        cfg.checkpoint_interval,
        cfg.retry.max_attempts,
        cfg.sweep_dir.join(vpic::lpi::sweep::WAL_NAME).display()
    );
    let runner = SweepRunner::new(grid, cfg);
    let out = runner.run_with_progress(&|ev| match ev {
        SweepProgress::Started {
            job,
            attempt,
            a0,
            n_over_ncr,
            vth,
        } => println!("job {job} attempt {attempt}: a0 = {a0}, n/ncr = {n_over_ncr}, vth = {vth}"),
        SweepProgress::Done {
            job,
            attempt,
            reflectivity,
            done,
            total,
        } => println!(
            "job {job} done (attempt {attempt}): reflectivity {reflectivity:.3e} [{done}/{total}]"
        ),
        SweepProgress::Failed {
            job,
            attempt,
            ready_at_ms,
            cause,
        } => println!("job {job} attempt {attempt} failed: {cause}; retry at t={ready_at_ms}ms"),
        SweepProgress::Quarantined { job, cause } => {
            println!("job {job} quarantined: {cause}")
        }
    })?;
    if out.replay.records > 0 {
        println!(
            "resumed: replayed {} WAL record(s){}, released {} orphaned lease(s)",
            out.replay.records,
            if out.replay.torn_tail {
                " (salvaged a torn tail)"
            } else {
                ""
            },
            out.orphans_released.len()
        );
    }
    match out.end {
        SweepEnd::Completed => {
            let s = &out.stats;
            println!(
                "sweep settled: {} done, {} quarantined, {} failed attempt(s) retried; \
                 curve in {}",
                s.done,
                s.quarantined,
                s.total_failures,
                out.curve_path
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            );
        }
        SweepEnd::Killed => println!("sweep killed by fault plan; re-run the same deck to resume"),
    }
    Ok(())
}

/// Diagnostics-pipeline counters for the closing summary: how the
/// snapshot handoff behaved (queue pressure, publisher stalls, losses),
/// as opposed to what the diagnostics measured. Silent when diag = off.
fn print_diag_stats(mode: vpic::diag::DiagMode, s: &vpic::diag::DiagStats) {
    if mode == vpic::diag::DiagMode::Off {
        return;
    }
    println!(
        "diag [{}]: {} snapshot(s) published, {} consumed, {} dropped, \
         max queue depth {}, publisher stalled {:.1} ms",
        mode.as_str(),
        s.published,
        s.consumed,
        s.dropped,
        s.max_depth,
        s.stall_seconds * 1e3
    );
}

/// Measured whole-step rate next to the parallel configuration that
/// produced it, so run logs double as performance records.
fn print_throughput(t: &vpic::core::StepTimings, pipelines: usize) {
    if t.total() > 0.0 && t.particle_steps > 0 {
        println!(
            "throughput: {:.3e} particles/s over {} steps ({:.1}% inner loop, {} pipelines, {} rayon threads)",
            t.particle_steps as f64 / t.total(),
            t.steps,
            100.0 * t.inner_loop_fraction(),
            pipelines,
            vpic::core::worker_threads()
        );
    }
}

/// Per-species sort-cadence and lane-coherence summary, so run logs show
/// what the cadence controller actually did (realized interval, sorts
/// performed vs skipped, spill pressure on the lane kernel).
fn print_coherence(species: &[vpic::core::Species]) {
    for sp in species {
        let c = sp.coherence();
        println!(
            "sort cadence [{}]: {} (realized interval {}), {} sorts, {} skipped, \
             crosser rate {:.4}, lane spill rate {:.4}, mixed blocks {:.4}",
            sp.name,
            sp.sort_policy,
            sp.cadence().interval,
            c.sorts,
            c.skipped_sorts,
            c.crosser_rate(),
            c.spill_rate(),
            c.mixed_block_fraction()
        );
    }
}

/// Per-rank campaign result carried out of the worker closure: the
/// outcome plus, on completion, the post-run global reductions
/// `(particles, total energy, world state fingerprint)`.
type RankStats = Option<(u64, f64, u32)>;
/// One seat's result as the launch entry points hand it back: the rank
/// may have panicked, failed with a campaign error, or finished.
type RankResult = Result<Result<(CampaignOutcome, RankStats), String>, nanompi::RankPanic>;

/// Fold the allgathered per-rank state fingerprints (rank order) into one
/// world fingerprint. Identical on every transport, so a socket run can
/// be diffed against a local run with a single number.
fn world_fingerprint(fps: &[u32]) -> u32 {
    let mut bytes = Vec::with_capacity(fps.len() * 4);
    for fp in fps {
        bytes.extend_from_slice(&fp.to_le_bytes());
    }
    fingerprint32(&bytes)
}

fn run_campaign_deck(
    setup: vpic::deck::CampaignSetup,
    out_dir: &str,
    cli: &Cli,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = setup.config(Path::new(out_dir));
    fs::create_dir_all(&cfg.checkpoint_dir)?;
    let cadence = match cfg.checkpoint {
        CheckpointPolicy::Fixed(n) => format!("every {n} steps"),
        CheckpointPolicy::Auto {
            mtbi,
            min_interval,
            max_interval,
        } => format!(
            "auto (Young/Daly, MTBI {:.0}s, {min_interval}..={max_interval} steps)",
            mtbi.as_secs_f64()
        ),
    };
    println!(
        "campaign run: {} ranks, {} steps, checkpoint {} into {}{}{}",
        setup.ranks,
        cfg.steps,
        cadence,
        cfg.checkpoint_dir.display(),
        if cfg.compress { ", compressed" } else { "" },
        match cfg.recovery {
            RecoveryMode::HotSpare => ", hot-spare recovery",
            RecoveryMode::Rollback => "",
        }
    );
    if let Some(bps) = cfg.write_throttle_bps {
        println!(
            "checkpoint writes throttled to {:.1} MB/s",
            bps as f64 / 1e6
        );
    }
    if let Some(plan) = &setup.fault_plan {
        println!(
            "fault injection: {} rule(s), seed {}",
            plan.rules.len(),
            plan.seed
        );
    }

    let transport = cli.transport.unwrap_or(setup.transport);
    let sock_dir = cli
        .socket_dir
        .clone()
        .unwrap_or_else(|| Path::new(out_dir).join("sock"));

    let plan = setup.fault_plan.clone();
    let ranks = setup.ranks;
    let cfg_ref = &cfg;
    let setup_ref = &setup;
    let rejoin = cli.rejoin;
    let fingerprint_path = Path::new(out_dir).join("state_fingerprint.txt");
    let fp_path_ref = &fingerprint_path;
    let worker = move |comm: &mut nanompi::Comm| {
        let rank = comm.rank();
        let sim = setup_ref.build_rank(rank);
        let drive = setup_ref.drive_for(rank);
        let (sim, outcome) = if rejoin {
            rejoin_campaign(comm, sim, cfg_ref, drive)
        } else {
            run_campaign_with(comm, sim, cfg_ref, drive)
        }
        .map_err(|e| e.to_string())?;
        // Degrade decisions are rendezvous-synchronized, so every rank
        // agrees on whether these trailing collectives run.
        let stats: RankStats = match outcome.end {
            CampaignEnd::Completed => {
                let dump = dump_rank_bytes(&sim, false).map_err(|e| e.to_string())?;
                let fps = comm
                    .allgather(fingerprint32(&dump))
                    .map_err(|e| e.to_string())?;
                let world_fp = world_fingerprint(&fps);
                if rank == 0 {
                    fs::write(fp_path_ref, format!("{world_fp:08x}\n"))
                        .map_err(|e| e.to_string())?;
                }
                let n = sim.global_particles(comm).map_err(|e| e.to_string())?;
                let (fe, fb, ke) = sim.global_energies(comm).map_err(|e| e.to_string())?;
                Some((n, fe + fb + ke.iter().sum::<f64>(), world_fp))
            }
            CampaignEnd::Degraded { .. } => None,
        };
        Ok::<_, String>((outcome, stats))
    };

    if let (Some(rank), Some(world)) = (cli.rank, cli.world) {
        // One OS process per rank: this process is exactly one seat of a
        // socket world; its peers were launched (or respawned) separately.
        if rank >= world {
            return Err(format!("--rank {rank} out of range for --world {world}").into());
        }
        fs::create_dir_all(&sock_dir)?;
        let mut boot = SocketBoot::new(SocketAddrSpec::unix(&sock_dir), rank, world);
        // Tie the handshake to the deck, so two different runs pointed at
        // the same socket directory fail loudly instead of exchanging
        // garbage.
        boot.world_fp = spec_fingerprint(&setup.spec) ^ setup.seed;
        println!(
            "socket rank {rank}/{world} on {}{}",
            sock_dir.display(),
            if rejoin { " (rejoining)" } else { "" }
        );
        let (res, traffic) = nanompi::run_socket(&boot, plan, worker)?;
        let summary_path = Path::new(out_dir).join(format!("campaign_r{rank:04}.tsv"));
        let results = vec![Ok(res)];
        return report_world(&summary_path, &results, &traffic, Some(rank));
    }

    let (results, traffic) = match transport {
        TransportKind::Local => nanompi::run_with_faults(ranks, plan, worker),
        TransportKind::Socket => {
            fs::create_dir_all(&sock_dir)?;
            println!("socket world: {ranks} ranks on {}", sock_dir.display());
            nanompi::run_socket_world(ranks, SocketAddrSpec::unix(&sock_dir), plan, worker)
        }
    };
    report_world(
        &Path::new(out_dir).join("campaign.tsv"),
        &results,
        &traffic,
        None,
    )
}

/// Print the per-rank results and the traffic summary, writing the TSV
/// summary alongside. `only_rank` relabels rows in single-process mode,
/// where index 0 of `results` is really that rank's seat.
fn report_world(
    summary_path: &Path,
    results: &[RankResult],
    traffic: &nanompi::TrafficReport,
    only_rank: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut summary = fs::File::create(summary_path)?;
    writeln!(
        summary,
        "rank\tend\tsteps_run\trecoveries\theals\tinterval\tpeak_imbalance"
    )?;
    let mut failures = 0usize;
    let mut printed_stats = false;
    for (i, res) in results.iter().enumerate() {
        let rank = only_rank.unwrap_or(i);
        let line = match res {
            Err(p) => {
                failures += 1;
                format!("rank {rank}: PANICKED: {}", p.message)
            }
            Ok(Err(e)) => {
                failures += 1;
                format!("rank {rank}: FAILED: {e}")
            }
            Ok(Ok((outcome, stats))) => {
                report_outcome(&mut summary, outcome)?;
                if let (Some((n, e, fp)), false) = (stats, printed_stats) {
                    println!(
                        "final state: {n} particles, total energy {e:.6e}, \
                         state fingerprint {fp:08x}"
                    );
                    printed_stats = true;
                }
                format!(
                    "rank {rank}: {} after {} steps, {} recovery(ies)",
                    match &outcome.end {
                        CampaignEnd::Completed => "completed".to_string(),
                        CampaignEnd::Degraded { at_step, .. } =>
                            format!("degraded at step {at_step}"),
                    },
                    outcome.steps_run,
                    outcome.recoveries.len()
                )
            }
        };
        println!("{line}");
    }
    println!(
        "traffic: {} messages, {} bytes total",
        traffic.total_messages, traffic.total_bytes
    );
    for t in traffic.top_tags(3) {
        println!(
            "  tag {:#x}: {} message(s), {} bytes",
            t.tag, t.messages, t.bytes
        );
    }
    if failures > 0 {
        return Err(format!("{failures} rank(s) failed unrecoverably").into());
    }
    Ok(())
}

fn report_outcome(summary: &mut fs::File, outcome: &CampaignOutcome) -> std::io::Result<()> {
    let end = match &outcome.end {
        CampaignEnd::Completed => "completed".to_string(),
        CampaignEnd::Degraded {
            at_step,
            partial_dump,
            flight_recorder,
        } => {
            println!(
                "  rank {} flight recorder: {}",
                outcome.rank,
                flight_recorder.display()
            );
            format!("degraded@{at_step}:{}", partial_dump.display())
        }
    };
    writeln!(
        summary,
        "{}\t{}\t{}\t{}\t{}\t{}\t{:.3}",
        outcome.rank,
        end,
        outcome.steps_run,
        outcome.recoveries.len(),
        outcome.heals.len(),
        outcome.effective_interval,
        outcome.peak_imbalance
    )?;
    for ev in &outcome.heals {
        println!(
            "  rank {} heal at step {}: {} burst of {} pass(es), rms {:.3e} -> {:.3e}{}",
            outcome.rank,
            ev.step,
            ev.kind.as_str(),
            ev.passes,
            ev.rms_before,
            ev.rms_after,
            if ev.healed { "" } else { " (not healed)" }
        );
    }
    for ev in &outcome.recoveries {
        println!(
            "  rank {} recovery #{} at step {}: {} -> restored step {}{}",
            outcome.rank,
            ev.attempt,
            ev.at_step,
            ev.cause,
            ev.restored_step,
            if ev.hot_spare { " (hot spare)" } else { "" }
        );
    }
    Ok(())
}
