//! `vpic-run`: execute a simulation described by an input deck and write
//! diagnostics as TSV.
//!
//! ```sh
//! cargo run --release --bin vpic-run -- decks/two_stream.deck out/
//! ```
//!
//! For `kind = plasma` decks this writes `energies.tsv` and a final field
//! line-out `fields.tsv` into the output directory; for `kind = lpi` it
//! additionally reports the measured reflectivity and the backscatter
//! spectrum (`spectrum.tsv`).

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use vpic::deck::{build, BuiltRun, Deck};
use vpic::diag::{write_field_line_x, write_series, EnergyLogger};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (deck_path, out_dir) = match args.as_slice() {
        [d] => (d.as_str(), "."),
        [d, o] => (d.as_str(), o.as_str()),
        _ => {
            eprintln!("usage: vpic-run <deck-file> [output-dir]");
            return ExitCode::from(2);
        }
    };
    match run(deck_path, out_dir) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vpic-run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(deck_path: &str, out_dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = fs::read_to_string(deck_path)?;
    let deck = Deck::parse(&text)?;
    fs::create_dir_all(out_dir)?;
    let steps = deck.steps();
    let energy_interval = deck
        .section("output")
        .and_then(|kv| kv.get("energy_interval"))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(10)
        .max(1);

    match build(&deck)? {
        BuiltRun::Plasma(mut sim) => {
            println!(
                "plasma run: {} cells, {} particles, {} steps",
                sim.grid.n_live(),
                sim.n_particles(),
                steps
            );
            let names: Vec<String> = sim.species.iter().map(|s| s.name.clone()).collect();
            let mut elog =
                EnergyLogger::new(fs::File::create(Path::new(out_dir).join("energies.tsv"))?, names);
            for s in 0..steps {
                if s % energy_interval == 0 {
                    elog.log_sim(&sim)?;
                }
                sim.step();
            }
            elog.log_sim(&sim)?;
            let mut f = fs::File::create(Path::new(out_dir).join("fields.tsv"))?;
            write_field_line_x(&sim.fields, &sim.grid, &mut f)?;
            let e = sim.energies();
            println!("done: total energy {:.6e}, lost particles {}", e.total(), sim.lost_particles);
        }
        BuiltRun::Lpi(mut run) => {
            println!(
                "LPI run: a0 = {}, n/ncr = {}, {} particles, {} steps",
                run.params.a0,
                run.params.n_over_ncr,
                run.sim.n_particles(),
                steps
            );
            let names: Vec<String> = run.sim.species.iter().map(|s| s.name.clone()).collect();
            let mut elog =
                EnergyLogger::new(fs::File::create(Path::new(out_dir).join("energies.tsv"))?, names);
            for s in 0..steps {
                if s % energy_interval == 0 {
                    elog.log_sim(&run.sim)?;
                }
                run.step();
            }
            elog.log_sim(&run.sim)?;
            let mut f = fs::File::create(Path::new(out_dir).join("fields.tsv"))?;
            write_field_line_x(&run.sim.fields, &run.sim.grid, &mut f)?;
            let spec = run.backscatter_spectrum();
            let xs: Vec<f64> = spec.iter().map(|(w, _)| *w).collect();
            let ys: Vec<f64> = spec.iter().map(|(_, p)| *p).collect();
            let mut f = fs::File::create(Path::new(out_dir).join("spectrum.tsv"))?;
            write_series("backscatter_power", &xs, &ys, &mut f)?;
            println!(
                "done: reflectivity {:.3e} over {} probe samples",
                run.reflectivity(),
                run.probe.samples()
            );
        }
    }
    Ok(())
}
